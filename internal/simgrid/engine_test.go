package simgrid

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestEngineFixedAction(t *testing.T) {
	e := NewEngine([]float64{1})
	e.Add(Fixed("wait", 2.5))
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2.5, 1e-12, "end time")
	if len(e.Completed()) != 1 || e.Completed()[0].State() != StateDone {
		t.Fatal("action not completed")
	}
}

func TestEngineSingleComputeAction(t *testing.T) {
	// 100 flops of work on a 10 flop/s CPU → 10 s.
	e := NewEngine([]float64{10})
	e.Add(&Action{Name: "comp", Work: 1, Usage: map[int]float64{0: 100}})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 10, 1e-9, "end time")
}

func TestEngineFairSharingDoublesTime(t *testing.T) {
	e := NewEngine([]float64{10})
	var t1, t2 float64
	a := &Action{Name: "a", Work: 1, Usage: map[int]float64{0: 100},
		OnComplete: func(e *Engine, _ *Action) { t1 = e.Now() }}
	b := &Action{Name: "b", Work: 1, Usage: map[int]float64{0: 100},
		OnComplete: func(e *Engine, _ *Action) { t2 = e.Now() }}
	e.Add(a)
	e.Add(b)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	almost(t, t1, 20, 1e-9, "first completion")
	almost(t, t2, 20, 1e-9, "second completion")
}

func TestEngineL07EqualProgressSharing(t *testing.T) {
	// L07 semantics: concurrent parallel tasks sharing a bottleneck get
	// equal *progress rates* (the usage amounts are the weights), not
	// equal resource shares. a needs 100 units/rate, b needs 10:
	// 100ρ + 10ρ ≤ 10 → ρ = 1/11, so both complete at t = 11.
	e := NewEngine([]float64{10})
	var ta, tb float64
	e.Add(&Action{Name: "a", Work: 1, Usage: map[int]float64{0: 100},
		OnComplete: func(e *Engine, _ *Action) { ta = e.Now() }})
	e.Add(&Action{Name: "b", Work: 1, Usage: map[int]float64{0: 10},
		OnComplete: func(e *Engine, _ *Action) { tb = e.Now() }})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	almost(t, tb, 11, 1e-9, "small action end")
	almost(t, ta, 11, 1e-9, "large action end")
}

func TestEngineDelayThenWork(t *testing.T) {
	e := NewEngine([]float64{10})
	e.Add(&Action{Name: "x", Delay: 1, Work: 1, Usage: map[int]float64{0: 10}})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2, 1e-9, "end time")
}

func TestEngineCallbackChaining(t *testing.T) {
	// A dependency chain built via callbacks: t0 → t1 → t2, 1 s each.
	e := NewEngine([]float64{1})
	mk := func(name string, next *Action) *Action {
		return &Action{Name: name, Work: 1, Usage: map[int]float64{0: 1},
			OnComplete: func(e *Engine, _ *Action) {
				if next != nil {
					e.Add(next)
				}
			}}
	}
	t2 := mk("t2", nil)
	t1 := mk("t1", t2)
	t0 := mk("t0", t1)
	e.Add(t0)
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 3, 1e-9, "chain end")
	if len(e.Completed()) != 3 {
		t.Fatalf("completed %d actions, want 3", len(e.Completed()))
	}
}

func TestEngineZeroWorkAction(t *testing.T) {
	e := NewEngine([]float64{1})
	fired := false
	e.Add(&Action{Name: "instant", OnComplete: func(e *Engine, _ *Action) { fired = true }})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 0, 1e-12, "instant end")
	if !fired {
		t.Error("OnComplete not fired for instantaneous action")
	}
}

func TestEngineUnconstrainedWorkCompletes(t *testing.T) {
	// An action with work but no resource usage (e.g. a redistribution
	// whose transfers are all intra-host) must complete right after its
	// delay instead of producing NaN progress.
	e := NewEngine([]float64{1})
	e.Add(&Action{Name: "local-redist", Delay: 0.25, Work: 1, Usage: map[int]float64{}})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 0.25, 1e-9, "unconstrained action end")
}

func TestEngineUsageOf(t *testing.T) {
	e := NewEngine([]float64{10})
	e.Add(&Action{Name: "a", Work: 1, Usage: map[int]float64{0: 100}})
	e.Add(&Action{Name: "b", Work: 1, Usage: map[int]float64{0: 50}})
	// Equal rates ρ = 10/150; usage = 100ρ + 50ρ = 10 (saturated).
	almost(t, e.UsageOf(0), 10, 1e-9, "saturated usage")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	almost(t, e.UsageOf(0), 0, 1e-12, "usage after completion")
}

func TestEngineDeadlockDetected(t *testing.T) {
	e := NewEngine([]float64{0})
	e.Add(&Action{Name: "starved", Work: 1, Usage: map[int]float64{0: 1}})
	if _, err := e.Run(); err == nil {
		t.Fatal("starved action did not produce an error")
	}
}

func TestEngineAddPanics(t *testing.T) {
	e := NewEngine([]float64{1})
	a := Fixed("once", 1)
	e.Add(a)
	assertPanics(t, "double add", func() { e.Add(a) })
	assertPanics(t, "bad resource", func() {
		e.Add(&Action{Name: "bad", Work: 1, Usage: map[int]float64{7: 1}})
	})
	assertPanics(t, "negative delay", func() { e.Add(&Action{Name: "neg", Delay: -1}) })
	assertPanics(t, "negative duration", func() { Fixed("neg", -1) })
}

func assertPanics(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func testNet(t *testing.T) *Net {
	t.Helper()
	n, err := NewNet(platform.Bayreuth())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetResourceLayout(t *testing.T) {
	n := testNet(t)
	caps := n.Capacities()
	if len(caps) != 96 { // 32 CPUs + 32 up + 32 down, no backplane
		t.Fatalf("capacity vector has %d entries, want 96", len(caps))
	}
	if caps[n.CPU(0)] != 250e6 {
		t.Errorf("CPU capacity = %g", caps[n.CPU(0)])
	}
	if caps[n.Uplink(5)] != 125e6 || caps[n.Downlink(31)] != 125e6 {
		t.Error("link capacities wrong")
	}
}

func TestNetBackplane(t *testing.T) {
	c := platform.Bayreuth()
	c.BackplaneBandwidth = 4e9
	n, err := NewNet(c)
	if err != nil {
		t.Fatal(err)
	}
	caps := n.Capacities()
	if len(caps) != 97 {
		t.Fatalf("capacity vector has %d entries, want 97", len(caps))
	}
	if !n.HasBackplane() || caps[n.Backplane()] != 4e9 {
		t.Error("backplane not modelled")
	}
}

func TestPtaskPureComputation(t *testing.T) {
	n := testNet(t)
	e := n.NewEngine()
	// 2·500³ flops over 4 hosts at 250 MFlop/s → 0.25e9/250e6 ... compute:
	// per host 2*500^3/4 = 62.5e6 flops → 0.25 s.
	p := 4
	comp := make([]float64, p)
	for i := range comp {
		comp[i] = 2 * 500 * 500 * 500 / float64(p)
	}
	e.Add(n.Ptask("mm", []int{0, 1, 2, 3}, comp, nil))
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 0.25, 1e-9, "ptask end")
}

func TestPtaskRedistribution(t *testing.T) {
	n := testNet(t)
	e := n.NewEngine()
	// Host 0 sends 125 MB to host 1: 1 s at 125 MB/s + 200 µs latency.
	bytes := [][]float64{{0, 125e6}, {0, 0}}
	e.Add(n.Ptask("redist", []int{0, 1}, nil, bytes))
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 1+2*100e-6, 1e-9, "redistribution end")
}

func TestPtaskUplinkContention(t *testing.T) {
	n := testNet(t)
	e := n.NewEngine()
	// Host 0 sends 125 MB to hosts 1 and 2 in one ptask: both flows share
	// host 0's uplink → 2 s (plus latency).
	bytes := [][]float64{{0, 125e6, 125e6}, {0, 0, 0}, {0, 0, 0}}
	e.Add(n.Ptask("fanout", []int{0, 1, 2}, nil, bytes))
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2+2*100e-6, 1e-9, "fan-out end")
}

func TestTwoPtasksContendOnSharedLink(t *testing.T) {
	n := testNet(t)
	e := n.NewEngine()
	// Two separate transfers into host 2's downlink: fair sharing halves
	// the bandwidth, both finish at ~2 s.
	e.Add(n.Ptask("a", []int{0, 2}, nil, [][]float64{{0, 125e6}, {0, 0}}))
	e.Add(n.Ptask("b", []int{1, 2}, nil, [][]float64{{0, 125e6}, {0, 0}}))
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2+2*100e-6, 1e-6, "contended end")
}

func TestPtaskCompAndCommOverlap(t *testing.T) {
	n := testNet(t)
	e := n.NewEngine()
	// L07: computation and communication progress in lockstep; the action
	// duration is the max of both components (here comm: 2 s > comp 1 s).
	comp := []float64{250e6, 250e6}          // 1 s each alone
	bytes := [][]float64{{0, 250e6}, {0, 0}} // 2 s alone
	e.Add(n.Ptask("mixed", []int{0, 1}, comp, bytes))
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2+2*100e-6, 1e-9, "mixed ptask end")
}

func TestLoneActionTimeMatchesEngine(t *testing.T) {
	n := testNet(t)
	comp := []float64{1e9, 1e9, 1e9}
	bytes := [][]float64{{0, 32e6, 0}, {0, 0, 32e6}, {32e6, 0, 0}}
	a := n.Ptask("x", []int{0, 1, 2}, comp, bytes)
	want := n.LoneActionTime(a)
	e := n.NewEngine()
	e.Add(a)
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, want, 1e-9, "lone action prediction")
}

func TestIntraHostTransferFree(t *testing.T) {
	n := testNet(t)
	a := n.Ptask("self", []int{0, 0}, nil, [][]float64{{0, 1e9}, {0, 0}})
	if len(a.Usage) != 0 {
		t.Errorf("intra-host transfer consumed resources: %v", a.Usage)
	}
}

// TestResetUnpinsActions pins the memory hygiene of the recycle lifecycle:
// after Reset, none of the engine's internal storage — including the spare
// capacity of the event-loop buffers and the solver scratch — may still
// reference actions from the previous run, or a parked pooled engine would
// pin them (and everything their OnComplete closures capture) indefinitely.
func TestResetUnpinsActions(t *testing.T) {
	e := NewEngine([]float64{10, 10})
	for i := 0; i < 8; i++ {
		e.Add(&Action{Name: "a", Work: 1, Usage: map[int]float64{i % 2: 1}})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Reset(nil)
	for name, buf := range map[string][]*Action{
		"live": e.live, "done": e.done, "nextLive": e.nextLive, "finished": e.finished,
	} {
		full := buf[:cap(buf)]
		for i, a := range full {
			if a != nil {
				t.Errorf("%s[%d] still references an action after Reset", name, i)
			}
		}
	}
	for i, v := range e.vars[:cap(e.vars)] {
		if v != nil {
			t.Errorf("vars[%d] still references a solver variable after Reset", i)
		}
	}
	for i, v := range e.sol.unfixed[:cap(e.sol.unfixed)] {
		if v != nil {
			t.Errorf("sol.unfixed[%d] still references a solver variable after Reset", i)
		}
	}
}

// TestResetRestoresSolverInvariant simulates the state a panicked solve
// leaves behind — nonzero weights and saturation marks with no touched
// record — and checks that Reset restores the zeroed-scratch invariant, so
// a pooled engine recovered from a panic cannot silently skip capacity
// constraints on its next run.
func TestResetRestoresSolverInvariant(t *testing.T) {
	e := NewEngine([]float64{10, 10})
	e.Add(&Action{Name: "a", Work: 1, Usage: map[int]float64{0: 2, 1: 1}})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.sol.weight[1] = 3.5 // what an aborted round would leave
	e.sol.saturated[0] = true
	e.Reset(nil)
	for r := range e.sol.weight {
		if e.sol.weight[r] != 0 || e.sol.saturated[r] {
			t.Fatalf("resource %d: weight=%g saturated=%v after Reset, want zeroed",
				r, e.sol.weight[r], e.sol.saturated[r])
		}
	}
	// The engine still solves correctly afterwards.
	a := &Action{Name: "b", Work: 1, Usage: map[int]float64{1: 2}}
	e.Add(a)
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 0.2, 1e-12, "post-reset solve")
	_ = a
}
