package simgrid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Work-conservation property: on a single resource, the total resource-work
// of all completed actions cannot exceed capacity × makespan, and must
// equal it when the resource is never idle (actions all present from t=0).
func TestEngineWorkConservationQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := 1 + 9*r.Float64()
		e := NewEngine([]float64{cap})
		nActions := 1 + r.Intn(6)
		total := 0.0
		for i := 0; i < nActions; i++ {
			amount := 0.5 + 10*r.Float64()
			total += amount
			e.Add(&Action{Name: "a", Work: 1, Usage: map[int]float64{0: amount}})
		}
		end, err := e.Run()
		if err != nil {
			return false
		}
		// All actions start at t=0 and the resource stays saturated until
		// the last completion, so end == total/cap.
		want := total / cap
		return end > want*(1-1e-9) && end < want*(1+1e-9)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Simultaneity property of L07 sharing: equal-work actions on one resource
// progress at equal rates regardless of their demand weights, so they all
// complete together at t = Σ demands / capacity.
func TestEngineL07SimultaneousCompletionQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := 5.0
		e := NewEngine([]float64{cap})
		n := 2 + r.Intn(5)
		total := 0.0
		actions := make([]*Action, n)
		for i := range actions {
			demand := 1 + 20*r.Float64()
			total += demand
			actions[i] = &Action{Name: "a", Work: 1, Usage: map[int]float64{0: demand}}
			e.Add(actions[i])
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		want := total / cap
		for _, a := range actions {
			if a.FinishedAt() < want*(1-1e-9) || a.FinishedAt() > want*(1+1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Delay-additivity property: adding a delay to an action shifts its
// completion by exactly that delay when it runs alone.
func TestEngineDelayAdditivityQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		amount := 1 + 10*r.Float64()
		delay := 5 * r.Float64()
		run := func(d float64) float64 {
			e := NewEngine([]float64{2})
			e.Add(&Action{Name: "a", Delay: d, Work: 1, Usage: map[int]float64{0: amount}})
			end, err := e.Run()
			if err != nil {
				return -1
			}
			return end
		}
		base := run(0)
		shifted := run(delay)
		if base < 0 || shifted < 0 {
			return false
		}
		diff := shifted - base - delay
		return diff > -1e-9 && diff < 1e-9
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
