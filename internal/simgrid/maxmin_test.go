package simgrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mmVar builds a sparse solver variable from a dense usage map, the way
// Engine.Add does for actions.
func mmVar(usage map[int]float64, bound float64) *maxminVar {
	v := &maxminVar{bound: bound}
	v.setUsage(usage)
	return v
}

// solveVars runs a fresh solver over the variables, for tests that exercise
// the algorithm outside an engine.
func solveVars(vars []*maxminVar, capacity []float64) {
	var s solver
	s.solve(vars, capacity)
}

func rates(vars []*maxminVar) []float64 {
	out := make([]float64, len(vars))
	for i, v := range vars {
		out[i] = v.rate
	}
	return out
}

func TestMaxMinSingleVariable(t *testing.T) {
	v := mmVar(map[int]float64{0: 2}, 0)
	solveVars([]*maxminVar{v}, []float64{10})
	if v.rate != 5 {
		t.Errorf("rate = %g, want 5", v.rate)
	}
}

func TestMaxMinEqualSharing(t *testing.T) {
	a := mmVar(map[int]float64{0: 1}, 0)
	b := mmVar(map[int]float64{0: 1}, 0)
	solveVars([]*maxminVar{a, b}, []float64{10})
	if a.rate != 5 || b.rate != 5 {
		t.Errorf("rates = %v, want [5 5]", rates([]*maxminVar{a, b}))
	}
}

func TestMaxMinWeightedSharing(t *testing.T) {
	// Variable a uses 3 units per rate, b uses 1: fair rates equalize at
	// C/Σw = 12/4 = 3.
	a := mmVar(map[int]float64{0: 3}, 0)
	b := mmVar(map[int]float64{0: 1}, 0)
	solveVars([]*maxminVar{a, b}, []float64{12})
	if a.rate != 3 || b.rate != 3 {
		t.Errorf("rates = %v, want [3 3]", rates([]*maxminVar{a, b}))
	}
}

func TestMaxMinTwoBottlenecks(t *testing.T) {
	// a alone on resource 0 (cap 10); a and b share resource 1 (cap 4).
	// Resource 1 is the bottleneck for both: each gets 2; a's resource 0
	// does not constrain it further.
	a := mmVar(map[int]float64{0: 1, 1: 1}, 0)
	b := mmVar(map[int]float64{1: 1}, 0)
	solveVars([]*maxminVar{a, b}, []float64{10, 4})
	if a.rate != 2 || b.rate != 2 {
		t.Errorf("rates = %v, want [2 2]", rates([]*maxminVar{a, b}))
	}
}

func TestMaxMinProgressiveFilling(t *testing.T) {
	// Classic: flows a (link0+link1), b (link0), c (link1); caps 1, 2.
	// link0: a+b ≤ 1 → fair 0.5 each; link1 then gives c = 2-0.5 = 1.5.
	a := mmVar(map[int]float64{0: 1, 1: 1}, 0)
	b := mmVar(map[int]float64{0: 1}, 0)
	c := mmVar(map[int]float64{1: 1}, 0)
	solveVars([]*maxminVar{a, b, c}, []float64{1, 2})
	want := []float64{0.5, 0.5, 1.5}
	got := rates([]*maxminVar{a, b, c})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("rates = %v, want %v", got, want)
			break
		}
	}
}

func TestMaxMinBound(t *testing.T) {
	// b is bounded below its fair share; a picks up the slack.
	a := mmVar(map[int]float64{0: 1}, 0)
	b := mmVar(map[int]float64{0: 1}, 1)
	solveVars([]*maxminVar{a, b}, []float64{10})
	if b.rate != 1 {
		t.Errorf("bounded rate = %g, want 1", b.rate)
	}
	if a.rate != 9 {
		t.Errorf("unbounded rate = %g, want 9", a.rate)
	}
}

func TestMaxMinNoUsage(t *testing.T) {
	v := mmVar(nil, 3)
	solveVars([]*maxminVar{v}, []float64{1})
	if v.rate != 3 {
		t.Errorf("rate = %g, want bound 3", v.rate)
	}
}

func TestMaxMinZeroCapacity(t *testing.T) {
	v := mmVar(map[int]float64{0: 1}, 0)
	solveVars([]*maxminVar{v}, []float64{0})
	if v.rate != 0 {
		t.Errorf("rate = %g, want 0 on dead resource", v.rate)
	}
}

func TestSetUsageSortsAndDropsZeros(t *testing.T) {
	v := mmVar(map[int]float64{7: 1, 0: 2, 3: 0, 5: 4}, 0)
	wantRes := []int{0, 5, 7}
	wantUse := []float64{2, 4, 1}
	if len(v.res) != len(wantRes) {
		t.Fatalf("res = %v, want %v", v.res, wantRes)
	}
	for i := range wantRes {
		if v.res[i] != wantRes[i] || v.use[i] != wantUse[i] {
			t.Fatalf("sparse form = %v/%v, want %v/%v", v.res, v.use, wantRes, wantUse)
		}
	}
	// Reloading reuses the backing arrays and resorts.
	before := &v.res[0]
	v.setUsage(map[int]float64{2: 1, 1: 3})
	if &v.res[0] != before {
		t.Error("setUsage reallocated its backing array on reload")
	}
	if v.res[0] != 1 || v.res[1] != 2 || v.use[0] != 3 || v.use[1] != 1 {
		t.Errorf("reloaded sparse form = %v/%v, want [1 2]/[3 1]", v.res, v.use)
	}
}

// TestSolverScratchReuse pins the allocation-free steady state: after a warm-up
// solve, repeated solves of same-shape problems must not allocate.
func TestSolverScratchReuse(t *testing.T) {
	var s solver
	vars := []*maxminVar{
		mmVar(map[int]float64{0: 1, 1: 2}, 0),
		mmVar(map[int]float64{1: 1}, 1.5),
		mmVar(map[int]float64{0: 3, 2: 1}, 0),
	}
	caps := []float64{4, 6, 8}
	s.solve(vars, caps) // warm-up grows the scratch
	allocs := testing.AllocsPerRun(100, func() { s.solve(vars, caps) })
	if allocs != 0 {
		t.Errorf("steady-state solve allocates %.1f objects per run, want 0", allocs)
	}
}

// Properties: feasibility (no constraint violated), and at least one tight
// constraint or bound per variable (Pareto efficiency indicator).
func TestMaxMinPropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRes := 1 + r.Intn(5)
		nVar := 1 + r.Intn(8)
		caps := make([]float64, nRes)
		for i := range caps {
			caps[i] = 0.5 + 10*r.Float64()
		}
		vars := make([]*maxminVar, nVar)
		usages := make([]map[int]float64, nVar)
		for i := range vars {
			usage := make(map[int]float64)
			for rr := 0; rr < nRes; rr++ {
				if r.Float64() < 0.6 {
					usage[rr] = 0.1 + 3*r.Float64()
				}
			}
			if len(usage) == 0 {
				usage[r.Intn(nRes)] = 1
			}
			bound := 0.0
			if r.Float64() < 0.3 {
				bound = 0.1 + 2*r.Float64()
			}
			vars[i] = mmVar(usage, bound)
			usages[i] = usage
		}
		solveVars(vars, caps)

		// Feasibility.
		used := make([]float64, nRes)
		for i, v := range vars {
			if v.rate < 0 {
				return false
			}
			if v.bound > 0 && v.rate > v.bound*(1+1e-9) {
				return false
			}
			for rr, u := range usages[i] {
				used[rr] += u * v.rate
			}
		}
		for rr := range caps {
			if used[rr] > caps[rr]*(1+1e-9) {
				return false
			}
		}
		// Efficiency: every variable is limited by a saturated resource or
		// its own bound.
		for i, v := range vars {
			if v.bound > 0 && v.rate >= v.bound*(1-1e-9) {
				continue
			}
			limited := false
			for rr := range usages[i] {
				if used[rr] >= caps[rr]*(1-1e-6) {
					limited = true
					break
				}
			}
			if !limited {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
