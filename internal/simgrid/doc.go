// Package simgrid is a from-scratch discrete-event simulation kernel for
// parallel and distributed applications, reproducing the subset of the
// SimGrid toolkit the paper's simulators rely on (§IV):
//
//   - a resource model: hosts with a compute capacity in flop/s and network
//     links with a bandwidth capacity in bytes/s, shared among concurrent
//     activities under bounded max-min fairness (the sharing policy SimGrid
//     validates in [Velho & Legrand 2009]);
//   - the Ptask_L07 parallel-task model: an activity described by a per-host
//     computation vector a and a per-host-pair communication matrix B, which
//     progresses at a single uniform rate so that computation and
//     communication advance in lockstep and the activity completes when all
//     of its components do. Setting a≠0, B=0 yields a purely parallel
//     computation, a=0, B≠0 a data-redistribution, and a≠0, B≠0 a parallel
//     task with communication;
//   - fixed-duration activities, used by the profile-based and empirical
//     simulators whose task execution times come from measurements rather
//     than flop counts;
//   - an event loop with completion callbacks, which lets a driver release
//     new activities when dependencies complete (the scheduling simulators in
//     internal/experiments are such drivers).
//
// The cluster interconnect is a star: each node owns a private full-duplex
// link (an uplink and a downlink resource) to the switch, and an optional
// backplane resource bounds aggregate switch traffic. A route between two
// distinct nodes crosses the source uplink, the backplane (if modelled) and
// the destination downlink, and carries twice the private-link latency.
// Network contention between communications sharing a link emerges from the
// max-min solver exactly as in SimGrid.
package simgrid
