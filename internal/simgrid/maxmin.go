package simgrid

import (
	"fmt"
	"math"
)

// maxminVar is one variable (an activity's progress rate) in a bounded
// max-min fairness problem.
type maxminVar struct {
	// usage maps a resource index to the amount of that resource consumed
	// per unit of rate. Zero-usage entries must be omitted.
	usage map[int]float64
	// bound caps the rate; <= 0 means unbounded.
	bound float64
	// rate is the solver's output.
	rate float64
	// fixed marks variables whose rate has been decided.
	fixed bool
}

// SolveMaxMin computes the bounded max-min fair allocation of rates to
// variables under per-resource capacity constraints:
//
//	for every resource r:  Σ_v usage[v][r]·rate[v] ≤ capacity[r]
//	for every variable v:  rate[v] ≤ bound[v]  (if bound[v] > 0)
//
// The classic bottleneck algorithm is used: repeatedly find the resource
// whose fair share (remaining capacity divided by the total usage weight of
// its undecided variables) is smallest, fix all its variables at that share,
// deduct their consumption everywhere, and iterate. Variables whose bound is
// tighter than every fair share are fixed at their bound first.
//
// The function operates on the engine's internal structures; SolveRates is
// the public entry point via the Engine.
func solveMaxMin(vars []*maxminVar, capacity []float64) {
	remaining := append([]float64(nil), capacity...)
	for _, v := range vars {
		v.rate = 0
		v.fixed = len(v.usage) == 0 // a variable using nothing runs unconstrained
		if v.fixed && v.bound > 0 {
			v.rate = v.bound
		} else if v.fixed {
			v.rate = math.Inf(1)
		}
	}

	for {
		// Total usage weight of undecided variables per resource.
		weight := make(map[int]float64)
		nUnfixed := 0
		for _, v := range vars {
			if v.fixed {
				continue
			}
			nUnfixed++
			for r, u := range v.usage {
				weight[r] += u
			}
		}
		if nUnfixed == 0 {
			return
		}

		// Bottleneck share over resources.
		share := math.Inf(1)
		for r, w := range weight {
			if w <= 0 {
				continue
			}
			s := remaining[r] / w
			if s < share {
				share = s
			}
		}

		// A bound tighter than the bottleneck share fixes that variable
		// before the bottleneck resource saturates.
		bounded := false
		for _, v := range vars {
			if v.fixed || v.bound <= 0 || v.bound > share {
				continue
			}
			v.rate = v.bound
			v.fixed = true
			bounded = true
			for r, u := range v.usage {
				remaining[r] -= u * v.rate
				if remaining[r] < 0 {
					remaining[r] = 0
				}
			}
		}
		if bounded {
			continue // recompute shares with the bounded variables gone
		}

		if math.IsInf(share, 1) {
			// No capacity pressure at all: unreachable for well-formed
			// inputs (every unfixed variable has usage on some resource).
			for _, v := range vars {
				if !v.fixed {
					v.rate = math.Inf(1)
					v.fixed = true
				}
			}
			return
		}

		// Fix every variable on a saturated bottleneck resource.
		saturated := make(map[int]bool)
		for r, w := range weight {
			if w <= 0 {
				continue
			}
			if remaining[r]/w <= share*(1+1e-12) {
				saturated[r] = true
			}
		}
		progressed := false
		for _, v := range vars {
			if v.fixed {
				continue
			}
			hit := false
			for r := range v.usage {
				if saturated[r] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			v.rate = share
			v.fixed = true
			progressed = true
			for r, u := range v.usage {
				remaining[r] -= u * v.rate
				if remaining[r] < 0 {
					remaining[r] = 0
				}
			}
		}
		if !progressed {
			panic(fmt.Sprintf("simgrid: max-min solver stalled with %d unfixed variables", nUnfixed))
		}
	}
}
