package simgrid

import (
	"fmt"
	"math"
)

// maxminVar is one variable (an activity's progress rate) in a bounded
// max-min fairness problem. Resource consumption is held in sparse
// index/value form: res lists the resource indices the variable consumes
// (ascending, no duplicates) and use holds the amount consumed per unit of
// rate, parallel to res. Entries are strictly positive — zero-usage entries
// are dropped when the sparse form is built (setUsage), so "uses resource r"
// and "appears in res" coincide.
type maxminVar struct {
	res []int
	use []float64
	// bound caps the rate; <= 0 means unbounded.
	bound float64
	// rate is the solver's output.
	rate float64
	// fixed marks variables whose rate has been decided.
	fixed bool
}

// setUsage rebuilds the sparse form from a dense usage map, reusing the
// backing arrays so steady-state reloads allocate nothing. Entries are kept
// sorted by resource index, which decouples the solver's memory-access and
// arithmetic order from Go's randomized map iteration. Zero entries are
// dropped; validation of indices and signs is the caller's job.
func (v *maxminVar) setUsage(usage map[int]float64) {
	v.res, v.use = v.res[:0], v.use[:0]
	for r, u := range usage {
		if u == 0 {
			continue
		}
		// Insertion sort: usage vectors are small (a handful of resources
		// per host touched), so this beats sort.Sort and allocates nothing.
		i := len(v.res)
		v.res = append(v.res, r)
		v.use = append(v.use, u)
		for i > 0 && v.res[i-1] > r {
			v.res[i], v.res[i-1] = v.res[i-1], v.res[i]
			v.use[i], v.use[i-1] = v.use[i-1], v.use[i]
			i--
		}
	}
}

// usageOf returns the variable's usage of resource r, 0 when unused. The
// sparse form is sorted and tiny, so a linear scan suffices.
func (v *maxminVar) usageOf(r int) float64 {
	for k, rr := range v.res {
		if rr == r {
			return v.use[k]
		}
		if rr > r {
			break
		}
	}
	return 0
}

// solver computes bounded max-min fair allocations of rates to variables
// under per-resource capacity constraints:
//
//	for every resource r:  Σ_v usage[v][r]·rate[v] ≤ capacity[r]
//	for every variable v:  rate[v] ≤ bound[v]  (if bound[v] > 0)
//
// The classic bottleneck algorithm is used: repeatedly find the resource
// whose fair share (remaining capacity divided by the total usage weight of
// its undecided variables) is smallest, fix all its variables at that share,
// deduct their consumption everywhere, and iterate. Variables whose bound is
// tighter than every fair share are fixed at their bound first.
//
// This is the engine-internal entry point: Engine.solveRates collects the
// runnable actions' variables and calls solve once per event; there is no
// public solver API. All scratch state — remaining capacities, per-resource
// weights, saturation marks and the unfixed-variable list — is hoisted into
// the solver and reused across calls, so steady-state solving performs no
// allocation once the scratch has grown to the problem size.
type solver struct {
	remaining []float64    // remaining capacity per resource
	weight    []float64    // per-round usage weight of unfixed variables
	saturated []bool       // per-round bottleneck marks
	touched   []int        // resources carrying weight in the current round
	unfixed   []*maxminVar // variables whose rate is still undecided
}

// reset restores the zeroed-scratch invariant unconditionally and drops the
// variable references held from previous solves. solve's round cleanup
// maintains the invariant on every normal exit, but a panic mid-round (the
// stall guard) can leave weights and saturation marks behind without a
// record of which entries are dirty — a recycled engine would then silently
// skip capacity constraints. Engine.Reset calls this, so an engine returning
// to a pool is always sound even after a panicked solve.
func (s *solver) reset() {
	clear(s.weight[:cap(s.weight)])
	clear(s.saturated[:cap(s.saturated)])
	s.touched = s.touched[:0]
	unfixed := s.unfixed[:cap(s.unfixed)]
	clear(unfixed)
	s.unfixed = unfixed[:0]
}

// grow sizes the per-resource scratch. weight and saturated rely on the
// invariant that solve leaves them zeroed (enforced by the round cleanup
// on every normal exit, and by reset after an abnormal one), so freshly
// grown storage and recycled storage are indistinguishable.
func (s *solver) grow(nRes int) {
	if cap(s.remaining) < nRes {
		s.remaining = make([]float64, nRes)
		s.weight = make([]float64, nRes)
		s.saturated = make([]bool, nRes)
	}
	s.remaining = s.remaining[:nRes]
	s.weight = s.weight[:nRes]
	s.saturated = s.saturated[:nRes]
}

// consume deducts a fixed variable's consumption from the remaining
// capacities, clamping at zero against floating-point residue.
func consume(remaining []float64, v *maxminVar) {
	for k, r := range v.res {
		remaining[r] -= v.use[k] * v.rate
		if remaining[r] < 0 {
			remaining[r] = 0
		}
	}
}

// solve assigns every variable its bounded max-min fair rate under the given
// capacities. Variables using no resource run unconstrained: at their bound
// if bounded, at +Inf otherwise.
func (s *solver) solve(vars []*maxminVar, capacity []float64) {
	s.grow(len(capacity))
	remaining := s.remaining
	copy(remaining, capacity)

	s.unfixed = s.unfixed[:0]
	for _, v := range vars {
		v.rate = 0
		v.fixed = len(v.res) == 0 // a variable using nothing runs unconstrained
		if v.fixed {
			if v.bound > 0 {
				v.rate = v.bound
			} else {
				v.rate = math.Inf(1)
			}
			continue
		}
		s.unfixed = append(s.unfixed, v)
	}

	weight, saturated, touched := s.weight, s.saturated, s.touched[:0]
	for {
		// Reset the previous round's weights and marks, leaving the scratch
		// zeroed for the next round (and the next solve).
		for _, r := range touched {
			weight[r] = 0
			saturated[r] = false
		}
		touched = touched[:0]
		if len(s.unfixed) == 0 {
			break
		}

		// Total usage weight of undecided variables per resource.
		for _, v := range s.unfixed {
			for k, r := range v.res {
				if weight[r] == 0 {
					touched = append(touched, r)
				}
				weight[r] += v.use[k]
			}
		}

		// Bottleneck share over resources.
		share := math.Inf(1)
		for _, r := range touched {
			if w := weight[r]; w > 0 {
				if sh := remaining[r] / w; sh < share {
					share = sh
				}
			}
		}

		// A bound tighter than the bottleneck share fixes that variable
		// before the bottleneck resource saturates.
		bounded := false
		n := 0
		for _, v := range s.unfixed {
			if v.bound <= 0 || v.bound > share {
				s.unfixed[n] = v
				n++
				continue
			}
			v.rate = v.bound
			v.fixed = true
			bounded = true
			consume(remaining, v)
		}
		s.unfixed = s.unfixed[:n]
		if bounded {
			continue // recompute shares with the bounded variables gone
		}

		if math.IsInf(share, 1) {
			// No capacity pressure at all: unreachable for well-formed
			// inputs (every unfixed variable has usage on some resource).
			for _, v := range s.unfixed {
				v.rate = math.Inf(1)
				v.fixed = true
			}
			s.unfixed = s.unfixed[:0]
			continue // one more pass through the cleanup, then exit
		}

		// Fix every variable on a saturated bottleneck resource.
		for _, r := range touched {
			if w := weight[r]; w > 0 && remaining[r]/w <= share*(1+1e-12) {
				saturated[r] = true
			}
		}
		progressed := false
		n = 0
		for _, v := range s.unfixed {
			hit := false
			for _, r := range v.res {
				if saturated[r] {
					hit = true
					break
				}
			}
			if !hit {
				s.unfixed[n] = v
				n++
				continue
			}
			v.rate = share
			v.fixed = true
			progressed = true
			consume(remaining, v)
		}
		s.unfixed = s.unfixed[:n]
		if !progressed {
			panic(fmt.Sprintf("simgrid: max-min solver stalled with %d unfixed variables", len(s.unfixed)))
		}
	}
	s.touched = touched[:0]
}
