package simgrid

// This file keeps the pre-optimization solver and event loop — the original
// map-based implementations — as a test-only oracle, and differentially
// checks the sparse allocation-free solver and the recycled engine against
// them on randomized instances. Any divergence in rates or completion times
// is a regression in the optimized core, not a modelling change.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// oracleVar is the original solver variable: dense map-keyed usage.
type oracleVar struct {
	usage map[int]float64
	bound float64
	rate  float64
	fixed bool
}

// oracleSolveMaxMin is the original bottleneck solver, verbatim: fresh
// weight maps per round, map-keyed usage vectors.
func oracleSolveMaxMin(vars []*oracleVar, capacity []float64) {
	remaining := append([]float64(nil), capacity...)
	for _, v := range vars {
		v.rate = 0
		v.fixed = len(v.usage) == 0
		if v.fixed && v.bound > 0 {
			v.rate = v.bound
		} else if v.fixed {
			v.rate = math.Inf(1)
		}
	}

	for {
		weight := make(map[int]float64)
		nUnfixed := 0
		for _, v := range vars {
			if v.fixed {
				continue
			}
			nUnfixed++
			for r, u := range v.usage {
				weight[r] += u
			}
		}
		if nUnfixed == 0 {
			return
		}

		share := math.Inf(1)
		for r, w := range weight {
			if w <= 0 {
				continue
			}
			s := remaining[r] / w
			if s < share {
				share = s
			}
		}

		bounded := false
		for _, v := range vars {
			if v.fixed || v.bound <= 0 || v.bound > share {
				continue
			}
			v.rate = v.bound
			v.fixed = true
			bounded = true
			for r, u := range v.usage {
				remaining[r] -= u * v.rate
				if remaining[r] < 0 {
					remaining[r] = 0
				}
			}
		}
		if bounded {
			continue
		}

		if math.IsInf(share, 1) {
			for _, v := range vars {
				if !v.fixed {
					v.rate = math.Inf(1)
					v.fixed = true
				}
			}
			return
		}

		saturated := make(map[int]bool)
		for r, w := range weight {
			if w <= 0 {
				continue
			}
			if remaining[r]/w <= share*(1+1e-12) {
				saturated[r] = true
			}
		}
		progressed := false
		for _, v := range vars {
			if v.fixed {
				continue
			}
			hit := false
			for r := range v.usage {
				if saturated[r] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			v.rate = share
			v.fixed = true
			progressed = true
			for r, u := range v.usage {
				remaining[r] -= u * v.rate
				if remaining[r] < 0 {
					remaining[r] = 0
				}
			}
		}
		if !progressed {
			panic("oracle solver stalled")
		}
	}
}

// oracleAction is one activity of the reference event loop.
type oracleAction struct {
	delay, work float64
	usage       map[int]float64
	bound       float64

	remaining, delayLeft, rate float64
	finishedAt                 float64
	done                       bool
}

// oracleRun is the original engine loop, verbatim minus callbacks: solve
// from scratch at every event, advance to the earliest completion, retire.
// It returns the final time, or ok=false on deadlock.
func oracleRun(capacity []float64, actions []*oracleAction) (float64, bool) {
	now := 0.0
	var live []*oracleAction
	for _, a := range actions {
		a.remaining = a.work
		a.delayLeft = a.delay
		if a.delayLeft <= 0 && a.remaining <= workEps {
			a.delayLeft = 0
			a.remaining = 0
		}
		live = append(live, a)
	}
	for len(live) > 0 {
		// Solve rates of runnable actions.
		var vars []*oracleVar
		var runnable []*oracleAction
		for _, a := range live {
			if a.delayLeft > 0 || a.remaining <= workEps {
				a.rate = 0
				continue
			}
			v := &oracleVar{usage: a.usage, bound: a.bound}
			vars = append(vars, v)
			runnable = append(runnable, a)
		}
		oracleSolveMaxMin(vars, capacity)
		for i, a := range runnable {
			a.rate = vars[i].rate
		}

		next := math.Inf(1)
		for _, a := range live {
			var t float64
			switch {
			case a.delayLeft > 0:
				t = a.delayLeft
			case a.remaining <= workEps:
				t = 0
			case a.rate <= 0:
				t = math.Inf(1)
			default:
				t = a.remaining / a.rate
			}
			if t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			return now, false
		}

		now += next
		horizon := next * (1 + timeEps)
		var still []*oracleAction
		for _, a := range live {
			if a.delayLeft > 0 {
				if a.delayLeft <= horizon {
					a.delayLeft = 0
					if a.remaining <= workEps {
						a.done = true
						a.finishedAt = now
						continue
					}
				} else {
					a.delayLeft -= next
				}
				still = append(still, a)
				continue
			}
			if math.IsInf(a.rate, 1) {
				a.remaining = 0
			} else {
				a.remaining -= a.rate * next
			}
			if a.remaining <= a.work*timeEps+workEps {
				a.done = true
				a.finishedAt = now
			} else {
				still = append(still, a)
			}
		}
		live = still
	}
	return now, true
}

// randomUsage draws a sparse usage map: mostly positive entries over a
// random resource subset, sometimes empty (an unconstrained action).
func randomUsage(r *rand.Rand, nRes int, allowEmpty bool) map[int]float64 {
	usage := make(map[int]float64)
	for rr := 0; rr < nRes; rr++ {
		if r.Float64() < 0.5 {
			usage[rr] = 0.1 + 5*r.Float64()
		}
	}
	if len(usage) == 0 && !allowEmpty {
		usage[r.Intn(nRes)] = 1
	}
	return usage
}

// sameRate compares solver outputs, treating +Inf as equal to +Inf. The two
// implementations perform the same floating-point operations in the same
// order, so the match is exact, not approximate.
func sameRate(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return a == b
}

// TestSolverMatchesOracleQuick differentially checks the sparse solver
// against the original map-based implementation on randomized instances:
// bounded and unbounded variables, zero-usage (unconstrained) variables,
// dead (zero-capacity) resources.
func TestSolverMatchesOracleQuick(t *testing.T) {
	var s solver // one reused solver across all instances, like an engine's
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRes := 1 + r.Intn(6)
		nVar := r.Intn(24)
		caps := make([]float64, nRes)
		for i := range caps {
			caps[i] = 0.5 + 10*r.Float64()
			if r.Float64() < 0.05 {
				caps[i] = 0 // dead resource
			}
		}
		vars := make([]*maxminVar, nVar)
		ovars := make([]*oracleVar, nVar)
		for i := 0; i < nVar; i++ {
			usage := randomUsage(r, nRes, true)
			bound := 0.0
			if r.Float64() < 0.3 {
				bound = 0.05 + 3*r.Float64()
			}
			vars[i] = mmVar(usage, bound)
			ovars[i] = &oracleVar{usage: usage, bound: bound}
		}
		s.solve(vars, caps)
		oracleSolveMaxMin(ovars, caps)
		for i := range vars {
			if !sameRate(vars[i].rate, ovars[i].rate) {
				t.Logf("seed %d: var %d rate = %g, oracle %g", seed, i, vars[i].rate, ovars[i].rate)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEngineMatchesOracleQuick differentially checks full engine runs —
// completion times and final time — against the reference event loop on
// randomized action sets: delays, bounds, unconstrained actions and
// degenerate zero-work actions. The engine is reused across instances via
// Reset, so this also pins that the recycle lifecycle cannot leak state
// between runs.
func TestEngineMatchesOracleQuick(t *testing.T) {
	e := NewEngine(nil)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRes := 1 + r.Intn(5)
		nAct := 1 + r.Intn(12)
		caps := make([]float64, nRes)
		for i := range caps {
			caps[i] = 0.5 + 10*r.Float64()
		}
		actions := make([]*Action, nAct)
		oracle := make([]*oracleAction, nAct)
		for i := 0; i < nAct; i++ {
			var delay, work float64
			var usage map[int]float64
			switch r.Intn(4) {
			case 0: // pure delay (a Fixed action)
				delay = 5 * r.Float64()
			case 1: // degenerate: zero delay, zero work
			default:
				delay = 2 * r.Float64() * float64(r.Intn(2))
				work = 1
				usage = randomUsage(r, nRes, false)
			}
			bound := 0.0
			if usage != nil && r.Float64() < 0.25 {
				bound = 0.05 + 2*r.Float64()
			}
			actions[i] = &Action{Name: "a", Delay: delay, Work: work, Usage: usage, Bound: bound}
			oracle[i] = &oracleAction{delay: delay, work: work, usage: usage, bound: bound}
		}

		e.Reset(caps)
		for _, a := range actions {
			e.Add(a)
		}
		end, err := e.Run()
		wantEnd, ok := oracleRun(caps, oracle)
		if (err == nil) != ok {
			t.Logf("seed %d: engine err = %v, oracle ok = %v", seed, err, ok)
			return false
		}
		if err != nil {
			return true // both deadlocked at the same point
		}
		if end != wantEnd {
			t.Logf("seed %d: end = %g, oracle %g", seed, end, wantEnd)
			return false
		}
		for i := range actions {
			if actions[i].State() != StateDone || !oracle[i].done {
				t.Logf("seed %d: action %d not completed on both sides", seed, i)
				return false
			}
			if actions[i].FinishedAt() != oracle[i].finishedAt {
				t.Logf("seed %d: action %d finished at %g, oracle %g",
					seed, i, actions[i].FinishedAt(), oracle[i].finishedAt)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
