package tgrid

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/testutil"
)

// TestReplayAllocFree pins the tentpole's simulation claim: once a replayer
// is bound and has replayed once (engine created, caches filled), every
// further replay of a perturbed timing allocates nothing.
func TestReplayAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	c := platform.Bayreuth()
	base := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(base)
	comm := perfmodel.CommFunc(base, c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.MustGenerate(dag.GenParams{Tasks: 20, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 78})
	s, err := sched.Build(sched.HCPA{}, g, c.Nodes, cost, comm)
	if err != nil {
		t.Fatal(err)
	}
	pm := &perfmodel.Perturbed{Base: base, P: perfmodel.Perturbation{
		TaskFactor: 1.1, StartupFactor: 1.3, RedistFactor: 0.9, TaskShape: 0.2, Salt: 9,
	}}
	// Both interface values are built outside the measured loop, like the
	// robustness engine's trial setups do, so the loop measures the replay
	// itself rather than interface boxing.
	sim := TimingScaler(ScaledTiming{Model: pm})
	baseTiming := Timing(ModelTiming{Model: base})

	rep := NewReplayer()
	if err := rep.Bind(net, s, baseTiming); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Replay(net, sim); err != nil { // warm engine + caches
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := rep.Replay(net, sim); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm replay allocates %.1f times per run, want 0", allocs)
	}
}

// TestRebindReplayAllocFree pins the reschedule path's steady state: with
// the schedule and graph unchanged, re-binding a warm replayer and replaying
// allocates nothing — the robustness engine re-binds once per trial.
func TestRebindReplayAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	c := platform.Bayreuth()
	base := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(base)
	comm := perfmodel.CommFunc(base, c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.MustGenerate(dag.GenParams{Tasks: 16, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 79})
	s, err := sched.Build(sched.MCPA{}, g, c.Nodes, cost, comm)
	if err != nil {
		t.Fatal(err)
	}
	pm := &perfmodel.Perturbed{Base: base, P: perfmodel.Perturbation{
		TaskFactor: 0.95, StartupFactor: 1, RedistFactor: 1.2, Salt: 10,
	}}
	sim := TimingScaler(ScaledTiming{Model: pm})
	baseTiming := Timing(ModelTiming{Model: base})

	rep := NewReplayer()
	run := func() {
		if err := rep.Bind(net, s, baseTiming); err != nil {
			t.Fatal(err)
		}
		if _, err := rep.Replay(net, sim); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("warm bind+replay allocates %.1f times per run, want 0", allocs)
	}
}
