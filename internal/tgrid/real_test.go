package tgrid

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/sched"
)

// smallSchedule builds a schedulable small-matrix application.
func smallSchedule(t *testing.T, g *dag.Graph, clusterSize int) *sched.Schedule {
	t.Helper()
	cost := func(task *dag.Task, p int) float64 { return task.Flops() / float64(p) }
	s, err := sched.Build(sched.HCPA{}, g, clusterSize, cost, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunRealMatchesSequentialReference(t *testing.T) {
	g := dag.MustGenerate(dag.GenParams{Tasks: 6, InputMatrices: 4, AddRatio: 0.5, N: 48, Seed: 17})
	s := smallSchedule(t, g, 8)
	opts := RealOptions{Seed: 99}
	res, err := RunReal(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialReference(g, s, opts)
	if len(res.Outputs) == 0 || len(res.Outputs) != len(want) {
		t.Fatalf("outputs: got %d, want %d", len(res.Outputs), len(want))
	}
	for id, norm := range want {
		got, ok := res.Outputs[id]
		if !ok {
			t.Errorf("exit task %d missing from real outputs", id)
			continue
		}
		if math.Abs(got-norm)/norm > 1e-9 {
			t.Errorf("exit task %d norm %g, want %g", id, got, norm)
		}
	}
	if res.Makespan <= 0 {
		t.Error("non-positive wall-clock makespan")
	}
}

func TestRunRealDeterministicOutputs(t *testing.T) {
	g := dag.MustGenerate(dag.GenParams{Tasks: 5, InputMatrices: 2, AddRatio: 0.75, N: 32, Seed: 23})
	s := smallSchedule(t, g, 4)
	opts := RealOptions{Seed: 7}
	a, err := RunReal(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReal(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id, norm := range a.Outputs {
		if b.Outputs[id] != norm {
			t.Errorf("exit %d: runs disagree (%g vs %g)", id, norm, b.Outputs[id])
		}
	}
}

func TestRunRealAddRepeatsDoNotChangeResult(t *testing.T) {
	g := dag.New("adds")
	a := g.AddTask(dag.KernelAdd, 24)
	b := g.AddTask(dag.KernelAdd, 24)
	g.AddEdge(a.ID, b.ID)
	s := smallSchedule(t, g, 4)
	r1, err := RunReal(s, RealOptions{Seed: 5, AddRepeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunReal(s, RealOptions{Seed: 5, AddRepeats: 4})
	if err != nil {
		t.Fatal(err)
	}
	for id := range r1.Outputs {
		if r1.Outputs[id] != r4.Outputs[id] {
			t.Errorf("repeats changed output of task %d", id)
		}
	}
}

func TestRunRealRefusesHugeMatrices(t *testing.T) {
	g := dag.New("huge")
	g.AddTask(dag.KernelMul, 4096)
	s := &sched.Schedule{
		Algorithm: "x",
		Graph:     g,
		Alloc:     []int{1},
		Hosts:     [][]int{{0}},
		EstStart:  []float64{0},
		EstFinish: []float64{1},
	}
	if _, err := RunReal(s, RealOptions{}); err == nil {
		t.Fatal("n=4096 real execution accepted")
	}
}

func TestRunRealSingleMulTask(t *testing.T) {
	g := dag.New("one")
	g.AddTask(dag.KernelMul, 40)
	s := smallSchedule(t, g, 4)
	res, err := RunReal(s, RealOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialReference(g, s, RealOptions{Seed: 3})
	if math.Abs(res.Outputs[0]-want[0])/want[0] > 1e-9 {
		t.Errorf("single task norm %g, want %g", res.Outputs[0], want[0])
	}
	if res.TaskWall[0] <= 0 {
		t.Error("task wall time not recorded")
	}
}
