package tgrid

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/redist"
	"repro/internal/sched"
)

// RealOptions configures the real-execution backend.
type RealOptions struct {
	// Seed derives the deterministic pseudo-random input matrices.
	Seed int64
	// AddRepeats re-executes additions, mirroring the paper's artificial
	// n/4 complexity boost; 0 or 1 means the plain kernel (recommended:
	// real runs use small n, where the boost serves no purpose).
	AddRepeats int
}

// RealResult reports a real execution.
type RealResult struct {
	// Makespan is the measured wall-clock application time.
	Makespan time.Duration
	// TaskWall holds the per-task wall-clock kernel durations.
	TaskWall []time.Duration
	// Outputs maps exit-task IDs to the Frobenius norm of their output,
	// for integrity checks against a sequential reference.
	Outputs map[int]float64
}

// distributed is a matrix stored as 1-D column blocks.
type distributed struct {
	dist   redist.Dist
	blocks []*kernels.Matrix
}

// RunReal executes the schedule for real: every task runs its parallel
// kernel on alloc[t] goroutine ranks over the mpi substrate, inter-task
// data moves through real message-passing redistributions, and wall-clock
// time is measured. DAG dependencies and the schedule's host-occupancy
// order are both honoured, so independent tasks genuinely run concurrently.
//
// This backend exists to demonstrate that the runtime executes genuine
// mixed-parallel programs (the TGrid development-library role, §III); the
// paper's quantitative figures use the virtual backend instead.
func RunReal(s *sched.Schedule, opts RealOptions) (*RealResult, error) {
	g := s.Graph
	n := g.Len()
	for _, task := range g.Tasks {
		if task.Kernel == dag.KernelNoop {
			continue
		}
		if task.N > 1024 {
			return nil, fmt.Errorf("tgrid: real execution of n=%d refused (laptop-scale limit 1024)", task.N)
		}
		if s.Alloc[task.ID] > task.N {
			return nil, fmt.Errorf("tgrid: task %d allocated %d ranks for n=%d", task.ID, s.Alloc[task.ID], task.N)
		}
	}

	// Host-occupancy prerequisites, as in the virtual backend.
	order := s.Order()
	clusterSize := 0
	for _, hosts := range s.Hosts {
		for _, h := range hosts {
			if h+1 > clusterSize {
				clusterSize = h + 1
			}
		}
	}
	lastOnHost := make([]int, clusterSize)
	for h := range lastOnHost {
		lastOnHost[h] = -1
	}
	hostPrereqs := make([][]int, n)
	for _, id := range order {
		seen := map[int]bool{}
		for _, h := range s.Hosts[id] {
			if prev := lastOnHost[h]; prev >= 0 && !seen[prev] {
				seen[prev] = true
				hostPrereqs[id] = append(hostPrereqs[id], prev)
			}
			lastOnHost[h] = id
		}
	}

	outputs := make([]*distributed, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	wall := make([]time.Duration, n)
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, task := range g.Tasks {
		wg.Add(1)
		go func(task *dag.Task) {
			defer wg.Done()
			defer close(done[task.ID])
			// Wait for data dependencies and host releases.
			for _, p := range task.Preds() {
				<-done[p]
			}
			for _, p := range hostPrereqs[task.ID] {
				<-done[p]
			}
			errMu.Lock()
			bail := firstErr != nil
			errMu.Unlock()
			if bail {
				return
			}
			out, d, err := executeTask(g, s, task, outputs, opts)
			if err != nil {
				fail(err)
				return
			}
			outputs[task.ID] = out
			wall[task.ID] = d
		}(task)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &RealResult{
		Makespan: time.Since(start),
		TaskWall: wall,
		Outputs:  make(map[int]float64),
	}
	for _, id := range g.Exits() {
		if out := outputs[id]; out != nil {
			full := kernels.Gather(out.blocks, out.dist)
			res.Outputs[id] = full.FrobeniusNorm()
		}
	}
	return res, nil
}

// executeTask redistributes the operands to the task's distribution and
// runs the parallel kernel.
func executeTask(g *dag.Graph, s *sched.Schedule, task *dag.Task, outputs []*distributed, opts RealOptions) (*distributed, time.Duration, error) {
	if task.Kernel == dag.KernelNoop {
		return nil, 0, nil
	}
	p := s.Alloc[task.ID]
	d, err := redist.NewDist(task.N, p)
	if err != nil {
		return nil, 0, fmt.Errorf("tgrid: task %d: %w", task.ID, err)
	}

	operands := gatherOperands(g, task, outputs, d, opts)
	begin := time.Now()
	acc := operands[0]
	for _, next := range operands[1:] {
		acc = applyKernel(task, acc, next, d, opts)
	}
	return &distributed{dist: d, blocks: acc}, time.Since(begin), nil
}

// gatherOperands redistributes predecessor outputs into the task's
// distribution (with real message passing) and pads with deterministic
// input matrices so every task has at least two operands.
func gatherOperands(g *dag.Graph, task *dag.Task, outputs []*distributed, d redist.Dist, opts RealOptions) [][]*kernels.Matrix {
	preds := append([]int(nil), task.Preds()...)
	sort.Ints(preds)
	var ops [][]*kernels.Matrix
	for _, pid := range preds {
		ops = append(ops, parReblock(outputs[pid], d))
	}
	for input := 0; len(ops) < 2; input++ {
		seed := opts.Seed ^ int64(task.ID)<<16 ^ int64(input)
		full := kernels.RandomMatrix(task.N, seed)
		ops = append(ops, kernels.Scatter(full, d))
	}
	return ops
}

// parReblock moves a distributed matrix into the destination distribution
// using the message-passing redistribution kernel.
func parReblock(src *distributed, dst redist.Dist) []*kernels.Matrix {
	if src.dist == dst {
		return src.blocks
	}
	p := src.dist.P
	if dst.P > p {
		p = dst.P
	}
	out := make([]*kernels.Matrix, dst.P)
	mpi.Run(p, func(c *mpi.Comm) {
		var local *kernels.Matrix
		if c.Rank() < src.dist.P {
			local = src.blocks[c.Rank()]
		}
		res := kernels.ParReblock(c, local, src.dist, dst)
		if c.Rank() < dst.P {
			out[c.Rank()] = res
		}
	})
	return out
}

// applyKernel runs one parallel kernel application over distributed blocks.
func applyKernel(task *dag.Task, a, b []*kernels.Matrix, d redist.Dist, opts RealOptions) []*kernels.Matrix {
	out := make([]*kernels.Matrix, d.P)
	switch task.Kernel {
	case dag.KernelMul:
		mpi.Run(d.P, func(c *mpi.Comm) {
			out[c.Rank()] = kernels.ParMatMul(c, a[c.Rank()], b[c.Rank()], d)
		})
	case dag.KernelAdd:
		repeats := opts.AddRepeats
		if repeats < 1 {
			repeats = 1
		}
		mpi.Run(d.P, func(c *mpi.Comm) {
			out[c.Rank()] = kernels.ParMatAdd(a[c.Rank()], b[c.Rank()], repeats)
		})
	default:
		panic(fmt.Sprintf("tgrid: kernel %v cannot execute for real", task.Kernel))
	}
	return out
}

// SequentialReference computes the exit-task output norms of the same
// application with plain sequential kernels, for verifying RunReal.
func SequentialReference(g *dag.Graph, s *sched.Schedule, opts RealOptions) map[int]float64 {
	outputs := make([]*kernels.Matrix, g.Len())
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	for _, id := range order {
		task := g.Task(id)
		if task.Kernel == dag.KernelNoop {
			continue
		}
		preds := append([]int(nil), task.Preds()...)
		sort.Ints(preds)
		var ops []*kernels.Matrix
		for _, pid := range preds {
			ops = append(ops, outputs[pid])
		}
		for input := 0; len(ops) < 2; input++ {
			seed := opts.Seed ^ int64(task.ID)<<16 ^ int64(input)
			ops = append(ops, kernels.RandomMatrix(task.N, seed))
		}
		acc := ops[0]
		for _, next := range ops[1:] {
			switch task.Kernel {
			case dag.KernelMul:
				acc = kernels.SeqMatMul(acc, next)
			case dag.KernelAdd:
				// Repeats re-execute but do not change the result.
				acc = kernels.SeqMatAdd(acc, next)
			}
		}
		outputs[id] = acc
	}
	res := make(map[int]float64)
	for _, id := range g.Exits() {
		if outputs[id] != nil {
			res[id] = outputs[id].FrobeniusNorm()
		}
	}
	return res
}
