package tgrid

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/redist"
	"repro/internal/sched"
	"repro/internal/simgrid"
)

// Run executes the schedule in virtual time on the given network, with all
// durations and overheads supplied by the Timing source.
//
// Execution semantics follow TGrid: a task starts once (a) the output data
// of every predecessor has been redistributed to the task's processor set
// and (b) its processors have been released by the previous tasks the
// schedule placed on them. Each task pays its startup overhead, then runs
// its kernel. Each DAG edge triggers a redistribution as soon as the
// producing task completes: the subnet-manager overhead followed by the
// point-to-point transfers of the 1-D block overlap plan, which contend on
// the network with everything else in flight.
func Run(net *simgrid.Net, s *sched.Schedule, timing Timing) (*Result, error) {
	g := s.Graph
	n := g.Len()
	clusterSize := net.Cluster.Nodes
	if err := s.Validate(clusterSize); err != nil {
		return nil, fmt.Errorf("tgrid: invalid schedule: %w", err)
	}

	// Engines are recycled through the net's pool: every study cell, campaign
	// run and service request replays schedules against a warm engine instead
	// of allocating a fresh one (and fresh solver scratch) per execution.
	engine := net.AcquireEngine()
	defer net.ReleaseEngine(engine)
	res := &Result{
		TaskStart:         make([]float64, n),
		TaskFinish:        make([]float64, n),
		TaskStartupDur:    make([]float64, n),
		RedistStart:       make(map[[2]int]float64),
		RedistFinish:      make(map[[2]int]float64),
		RedistOverheadDur: make(map[[2]int]float64),
	}

	// Host-occupancy chains: for each task, the set of distinct tasks that
	// must release one of its processors first (the schedule's previous
	// occupant of each host).
	order := s.Order()
	lastOnHost := make([]int, clusterSize)
	for h := range lastOnHost {
		lastOnHost[h] = -1
	}
	hostPrereqs := make([][]int, n) // distinct earlier occupants per task
	for _, id := range order {
		seen := map[int]bool{}
		for _, h := range s.Hosts[id] {
			if prev := lastOnHost[h]; prev >= 0 && !seen[prev] {
				seen[prev] = true
				hostPrereqs[id] = append(hostPrereqs[id], prev)
			}
			lastOnHost[h] = id
		}
	}

	// Prerequisite countdown per task: one per incoming redistribution,
	// one per host-release.
	waiting := make([]int, n)
	for _, t := range g.Tasks {
		waiting[t.ID] = t.InDegree() + len(hostPrereqs[t.ID])
	}

	// releasedBy[id] lists tasks waiting on a host released by id.
	releasedBy := make([][]int, n)
	for id, prereqs := range hostPrereqs {
		for _, p := range prereqs {
			releasedBy[p] = append(releasedBy[p], id)
		}
	}

	var launch func(id int)
	var arrive func(id int) // one prerequisite of id satisfied

	arrive = func(id int) {
		waiting[id]--
		if waiting[id] < 0 {
			panic(fmt.Sprintf("tgrid: task %d over-released", id))
		}
		if waiting[id] == 0 {
			launch(id)
		}
	}

	startRedist := func(src, dst int) {
		key := [2]int{src, dst}
		pSrc, pDst := s.Alloc[src], s.Alloc[dst]
		overhead := timing.RedistOverhead(pSrc, pDst)
		srcTask := g.Task(src)

		var action *simgrid.Action
		if bytes := srcTask.OutputBytes(); bytes > 0 {
			sd, err := redist.NewDist(srcTask.N, pSrc)
			if err != nil {
				panic(fmt.Sprintf("tgrid: edge %d->%d: %v", src, dst, err))
			}
			dd, err := redist.NewDist(srcTask.N, pDst)
			if err != nil {
				panic(fmt.Sprintf("tgrid: edge %d->%d: %v", src, dst, err))
			}
			m, err := redist.CommMatrix(sd, dd)
			if err != nil {
				panic(fmt.Sprintf("tgrid: edge %d->%d: %v", src, dst, err))
			}
			// Combined host list: source ranks then destination ranks.
			hosts := make([]int, 0, pSrc+pDst)
			hosts = append(hosts, s.Hosts[src]...)
			hosts = append(hosts, s.Hosts[dst]...)
			full := make([][]float64, pSrc+pDst)
			for i := range full {
				full[i] = make([]float64, pSrc+pDst)
			}
			for i := 0; i < pSrc; i++ {
				for j := 0; j < pDst; j++ {
					full[i][pSrc+j] = float64(m[i][j])
				}
			}
			action = net.Ptask(fmt.Sprintf("redist-%d-%d", src, dst), hosts, nil, full)
			action.Delay += overhead
		} else {
			action = simgrid.Fixed(fmt.Sprintf("redist-%d-%d", src, dst), overhead)
		}
		res.RedistStart[key] = engine.Now()
		res.RedistOverheadDur[key] = overhead
		action.OnComplete = func(e *simgrid.Engine, _ *simgrid.Action) {
			res.RedistFinish[key] = e.Now()
			arrive(dst)
		}
		engine.Add(action)
	}

	launch = func(id int) {
		task := g.Task(id)
		p := s.Alloc[id]
		startup := timing.TaskStartup(task, p)
		if startup < 0 {
			panic(fmt.Sprintf("tgrid: negative startup for task %d", id))
		}
		fixed, comp, bytes := timing.TaskWork(task, s.Hosts[id])

		var action *simgrid.Action
		if comp == nil && bytes == nil {
			action = simgrid.Fixed(fmt.Sprintf("task-%d", id), startup+fixed)
		} else {
			action = net.Ptask(fmt.Sprintf("task-%d", id), s.Hosts[id], comp, bytes)
			action.Delay += startup + fixed
		}
		res.TaskStart[id] = engine.Now()
		res.TaskStartupDur[id] = startup
		action.OnComplete = func(e *simgrid.Engine, _ *simgrid.Action) {
			res.TaskFinish[id] = e.Now()
			for _, succ := range task.Succs() {
				startRedist(id, succ)
			}
			for _, waiter := range releasedBy[id] {
				arrive(waiter)
			}
		}
		engine.Add(action)
	}

	// Seed: tasks with no prerequisites at all.
	for id := 0; id < n; id++ {
		if waiting[id] == 0 {
			launch(id)
		}
	}

	makespan, err := engine.Run()
	if err != nil {
		return nil, fmt.Errorf("tgrid: %w", err)
	}
	// Every task must have run exactly once.
	for id := 0; id < n; id++ {
		if waiting[id] != 0 {
			return nil, fmt.Errorf("tgrid: task %d never became ready (deadlocked schedule)", id)
		}
	}
	res.Makespan = makespan
	return res, nil
}

// ModelTiming adapts a performance model to the Timing interface, turning
// Run into one of the paper's simulators. TaskModel is any perfmodel.Model;
// the indirection through this struct keeps tgrid free of a perfmodel
// dependency cycle.
type ModelTiming struct {
	Model interface {
		TaskTime(task *dag.Task, p int) float64
		StartupOverhead(p int) float64
		RedistOverhead(pSrc, pDst int) float64
		TaskPtask(task *dag.Task, p int) (comp []float64, bytes [][]float64)
	}
}

// TaskStartup implements Timing.
func (m ModelTiming) TaskStartup(task *dag.Task, p int) float64 {
	return m.Model.StartupOverhead(p)
}

// TaskWork implements Timing: analytic models yield parallel-task
// descriptions, measured models yield fixed durations. Performance models
// describe homogeneous platforms, so only the processor count matters here.
func (m ModelTiming) TaskWork(task *dag.Task, hosts []int) (float64, []float64, [][]float64) {
	p := len(hosts)
	comp, bytes := m.Model.TaskPtask(task, p)
	if comp != nil || bytes != nil {
		return 0, comp, bytes
	}
	return m.Model.TaskTime(task, p), nil, nil
}

// RedistOverhead implements Timing.
func (m ModelTiming) RedistOverhead(pSrc, pDst int) float64 {
	return m.Model.RedistOverhead(pSrc, pDst)
}
