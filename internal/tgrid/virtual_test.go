package tgrid

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

// flatTiming gives every task a fixed kernel time and startup, and every
// redistribution a fixed overhead, for analytically checkable replays.
type flatTiming struct {
	startup, kernel, redist float64
}

func (f flatTiming) TaskStartup(task *dag.Task, p int) float64 { return f.startup }
func (f flatTiming) TaskWork(task *dag.Task, hosts []int) (float64, []float64, [][]float64) {
	return f.kernel, nil, nil
}
func (f flatTiming) RedistOverhead(pSrc, pDst int) float64 { return f.redist }

func testNet(t *testing.T) *simgrid.Net {
	t.Helper()
	n, err := simgrid.NewNet(platform.Bayreuth())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func chainSchedule(t *testing.T, k int) *sched.Schedule {
	t.Helper()
	g := dag.New("chain")
	prev := -1
	for i := 0; i < k; i++ {
		task := g.AddTask(dag.KernelNoop, 0)
		task.N = 64 // give it a matrix so redistributions are non-trivial
		task.Kernel = dag.KernelMul
		if prev >= 0 {
			g.AddEdge(prev, task.ID)
		}
		prev = task.ID
	}
	cost := func(task *dag.Task, p int) float64 { return 1 }
	return sched.MapSchedule(g, ones(k), 32, cost, nil)
}

func ones(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestRunChainTiming(t *testing.T) {
	net := testNet(t)
	s := chainSchedule(t, 3)
	res, err := Run(net, s, flatTiming{startup: 0.5, kernel: 2, redist: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Each task: 0.5 startup + 2 kernel; between tasks: 0.1 redist
	// overhead + transfer of a 64×64 matrix (32 KB at 125 MB/s ≈ 0.26 ms;
	// only if hosts differ — with 1-proc tasks mapping reuses earliest
	// host, transfers may be local). Expected ≥ 3·2.5 + 2·0.1.
	min := 3*2.5 + 2*0.1
	if res.Makespan < min-1e-9 {
		t.Errorf("makespan = %g, want ≥ %g", res.Makespan, min)
	}
	if res.Makespan > min+0.1 {
		t.Errorf("makespan = %g, unexpectedly far above %g", res.Makespan, min)
	}
	// Task windows ordered.
	for i := 1; i < 3; i++ {
		if res.TaskStart[i] < res.TaskFinish[i-1] {
			t.Errorf("task %d starts at %g before predecessor finished at %g",
				i, res.TaskStart[i], res.TaskFinish[i-1])
		}
	}
	// Redistributions recorded per edge.
	if len(res.RedistStart) != 2 {
		t.Errorf("recorded %d redistributions, want 2", len(res.RedistStart))
	}
	if d := res.RedistDuration(0, 1); d < 0.1-1e-9 {
		t.Errorf("redist(0,1) = %g, want ≥ 0.1", d)
	}
	if d := res.RedistDuration(5, 6); d != 0 {
		t.Errorf("redist of absent edge = %g, want 0", d)
	}
}

func TestRunRecordsBreakdown(t *testing.T) {
	net := testNet(t)
	s := chainSchedule(t, 3)
	res, err := Run(net, s, flatTiming{startup: 0.5, kernel: 2, redist: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for id := range res.TaskStartupDur {
		almost(t, res.TaskStartupDur[id], 0.5, 1e-12, "startup duration")
		almost(t, res.KernelDuration(id), 2, 1e-9, "kernel duration")
	}
	b := res.Breakdown()
	almost(t, b.Startup, 1.5, 1e-9, "total startup")
	almost(t, b.Kernel, 6, 1e-9, "total kernel")
	almost(t, b.RedistOverhead, 0.2, 1e-9, "total redistribution overhead")
	if b.RedistTransfer < 0 {
		t.Errorf("negative transfer time %g", b.RedistTransfer)
	}
}

func TestRunIndependentTasksOverlap(t *testing.T) {
	net := testNet(t)
	g := dag.New("par")
	g.AddTask(dag.KernelMul, 64)
	g.AddTask(dag.KernelMul, 64)
	cost := func(task *dag.Task, p int) float64 { return 1 }
	s := sched.MapSchedule(g, []int{1, 1}, 32, cost, nil)
	res, err := Run(net, s, flatTiming{kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Makespan, 3, 1e-9, "parallel makespan")
}

func TestRunHostExclusivitySerializes(t *testing.T) {
	net := testNet(t)
	g := dag.New("two-on-one")
	g.AddTask(dag.KernelMul, 64)
	g.AddTask(dag.KernelMul, 64)
	// Both tasks on all 32 hosts: they must serialize.
	cost := func(task *dag.Task, p int) float64 { return 1 }
	s := sched.MapSchedule(g, []int{32, 32}, 32, cost, nil)
	res, err := Run(net, s, flatTiming{kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Makespan, 6, 1e-9, "serialized makespan")
}

func TestRunWithAnalyticModelMatchesLoneEstimates(t *testing.T) {
	c := platform.Bayreuth()
	net := testNet(t)
	model := perfmodel.NewAnalytic(c)
	g := dag.New("single")
	g.AddTask(dag.KernelMul, 2000)
	cost := perfmodel.CostFunc(model)
	s := sched.MapSchedule(g, []int{4}, 32, cost, nil)
	res, err := Run(net, s, ModelTiming{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Makespan, model.TaskTime(g.Task(0), 4), 1e-6, "analytic single-task replay")
}

func TestRunRejectsInvalidSchedule(t *testing.T) {
	net := testNet(t)
	g := dag.New("bad")
	g.AddTask(dag.KernelMul, 64)
	s := &sched.Schedule{
		Algorithm: "bogus",
		Graph:     g,
		Alloc:     []int{40}, // more than the cluster has
		Hosts:     [][]int{make([]int, 40)},
		EstStart:  []float64{0},
		EstFinish: []float64{1},
	}
	if _, err := Run(net, s, flatTiming{}); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

func TestRunDiamondRedistributionsContend(t *testing.T) {
	// A diamond where both branches redistribute large matrices into the
	// sink at the same time: transfers share the network, so the replay
	// must finish later than a single-transfer lower bound.
	net := testNet(t)
	g := dag.New("diamond")
	a := g.AddTask(dag.KernelMul, 2000)
	b := g.AddTask(dag.KernelMul, 2000)
	c := g.AddTask(dag.KernelMul, 2000)
	d := g.AddTask(dag.KernelMul, 2000)
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(a.ID, c.ID)
	g.AddEdge(b.ID, d.ID)
	g.AddEdge(c.ID, d.ID)
	cost := func(task *dag.Task, p int) float64 { return 1 }
	s := sched.MapSchedule(g, []int{1, 1, 1, 1}, 4, cost, nil)
	res, err := Run(net, s, flatTiming{kernel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 3 {
		t.Errorf("makespan = %g, expected > 3 (kernel chain) due to transfers", res.Makespan)
	}
	for e := range res.RedistStart {
		if res.RedistFinish[e] <= res.RedistStart[e] {
			t.Errorf("edge %v redistribution has non-positive duration", e)
		}
	}
}

func TestModelTimingAdaptsAnalytic(t *testing.T) {
	model := perfmodel.NewAnalytic(platform.Bayreuth())
	mt := ModelTiming{Model: model}
	task := &dag.Task{Kernel: dag.KernelMul, N: 2000}
	fixed, comp, _ := mt.TaskWork(task, []int{0, 1, 2, 3})
	if comp == nil {
		t.Fatal("analytic model should produce a parallel-task description")
	}
	if fixed != 0 {
		t.Errorf("fixed = %g alongside ptask description", fixed)
	}
	if mt.TaskStartup(task, 4) != 0 {
		t.Error("analytic startup should be 0")
	}
}

func TestModelTimingAdaptsEmpirical(t *testing.T) {
	model := perfmodel.PaperEmpirical()
	mt := ModelTiming{Model: model}
	task := &dag.Task{Kernel: dag.KernelMul, N: 2000}
	fixed, comp, bytes := mt.TaskWork(task, []int{0, 1, 2, 3})
	if comp != nil || bytes != nil {
		t.Fatal("empirical model should produce fixed durations")
	}
	almost(t, fixed, model.TaskTime(task, 4), 1e-12, "empirical fixed duration")
}
