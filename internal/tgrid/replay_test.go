package tgrid

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
)

// TestReplayMatchesRun is the differential guard for the replay path: over a
// spread of DAGs, algorithms and perturbation draws — including platform
// (bandwidth/latency) noise, which re-parameterises the net — Replayer must
// reproduce Run's makespan bit for bit.
func TestReplayMatchesRun(t *testing.T) {
	c := platform.Bayreuth()
	base := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(base)
	comm := perfmodel.CommFunc(base, c)
	baseNet, err := simgrid.NewNet(c)
	if err != nil {
		t.Fatal(err)
	}

	draws := []perfmodel.Perturbation{
		perfmodel.IdentityPerturbation(),
		{TaskFactor: 1.13, StartupFactor: 1, RedistFactor: 1, Salt: 1},
		{TaskFactor: 0.9, StartupFactor: 1.4, RedistFactor: 1.2, TaskShape: 0.25, Salt: 2},
		{TaskFactor: 1, StartupFactor: 1, RedistFactor: 1, TaskOffset: 0.02, Salt: 3}, // fixed fallback
		{TaskFactor: 1.05, StartupFactor: 1, RedistFactor: 1, RedistShape: 0.4, StartupOffset: 0.01, Salt: 4},
	}
	bwLat := [][2]float64{{1, 1}, {0.7, 1.6}, {1.4, 0.5}}

	rep := NewReplayer()
	for seed := int64(0); seed < 4; seed++ {
		g := dag.MustGenerate(dag.GenParams{
			Tasks: 8 + int(seed)*7, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 20 + seed,
		})
		for _, algo := range []sched.Algorithm{sched.HCPA{}, sched.MCPA{}, sched.Sequential{}} {
			s, err := sched.Build(algo, g, c.Nodes, cost, comm)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Bind(baseNet, s, ModelTiming{Model: base}); err != nil {
				t.Fatal(err)
			}
			for di, draw := range draws {
				for _, bl := range bwLat {
					pc := c
					pc.LinkBandwidth *= bl[0]
					pc.BackplaneBandwidth *= bl[0]
					pc.LinkLatency *= bl[1]
					net, err := simgrid.NewNet(pc)
					if err != nil {
						t.Fatal(err)
					}
					pm := &perfmodel.Perturbed{Base: base, P: draw}
					want, err := Run(net, s, ModelTiming{Model: pm})
					if err != nil {
						t.Fatal(err)
					}
					got, err := rep.Replay(net, ScaledTiming{Model: pm})
					if err != nil {
						t.Fatal(err)
					}
					if got != want.Makespan {
						t.Fatalf("dag %d %s draw %d bw %g lat %g: replay %v != run %v (diff %g)",
							seed, algo.Name(), di, bl[0], bl[1], got, want.Makespan,
							math.Abs(got-want.Makespan))
					}
				}
			}
		}
	}
}

// TestReplayUnscaledMatchesRun checks the Unscaled adapter: replaying the
// bound base timing itself reproduces Run with that timing.
func TestReplayUnscaledMatchesRun(t *testing.T) {
	c := platform.Bayreuth()
	base := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(base)
	comm := perfmodel.CommFunc(base, c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.MustGenerate(dag.GenParams{Tasks: 12, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 9})
	s, err := sched.Build(sched.HCPA{}, g, c.Nodes, cost, comm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(net, s, ModelTiming{Model: base})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer()
	if err := rep.Bind(net, s, ModelTiming{Model: base}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated replays must agree with themselves
		got, err := rep.Replay(net, Unscaled{ModelTiming{Model: base}})
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Makespan {
			t.Fatalf("replay %d: %v != %v", i, got, want.Makespan)
		}
	}
}

// TestReplayRebind checks a replayer re-bound across schedules and graphs
// does not leak structure from earlier binds.
func TestReplayRebind(t *testing.T) {
	c := platform.Bayreuth()
	base := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(base)
	comm := perfmodel.CommFunc(base, c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		t.Fatal(err)
	}
	g1 := dag.MustGenerate(dag.GenParams{Tasks: 18, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 30})
	g2 := dag.MustGenerate(dag.GenParams{Tasks: 7, InputMatrices: 2, AddRatio: 1, N: 2000, Seed: 31})
	pm := &perfmodel.Perturbed{Base: base, P: perfmodel.Perturbation{
		TaskFactor: 1.1, StartupFactor: 1, RedistFactor: 1, Salt: 5,
	}}
	rep := NewReplayer()
	for round := 0; round < 2; round++ {
		for _, g := range []*dag.Graph{g1, g2} {
			for _, algo := range []sched.Algorithm{sched.HCPA{}, sched.DataParallel{}} {
				s, err := sched.Build(algo, g, c.Nodes, cost, comm)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(net, s, ModelTiming{Model: pm})
				if err != nil {
					t.Fatal(err)
				}
				if err := rep.Bind(net, s, ModelTiming{Model: base}); err != nil {
					t.Fatal(err)
				}
				got, err := rep.Replay(net, ScaledTiming{Model: pm})
				if err != nil {
					t.Fatal(err)
				}
				if got != want.Makespan {
					t.Fatalf("round %d %s %s: %v != %v", round, g.Name, algo.Name(), got, want.Makespan)
				}
			}
		}
	}
}
