// Package tgrid reproduces the role of the TGrid runtime environment (§III):
// it executes a mixed-parallel application according to a given schedule,
// spawning each multiprocessor task on its assigned processors and
// performing the transparent data redistributions between dependent tasks.
//
// Two backends are provided:
//
//   - the virtual backend (Run): a virtual-time replay on top of the
//     internal/simgrid kernel, parameterised by a Timing source. With a
//     perfmodel-backed Timing it is exactly one of the paper's simulators;
//     with the hidden ground-truth Timing of internal/cluster it plays the
//     role of the real 32-node cluster (the "experiment");
//   - the real backend (RunReal, real.go): actually executes the parallel
//     matrix kernels with goroutine ranks and channel-based message passing
//     (internal/mpi, internal/kernels) and measures wall-clock time, for
//     laptop-scale demonstrations that the runtime genuinely runs
//     mixed-parallel programs.
package tgrid

import (
	"repro/internal/dag"
)

// Timing supplies the execution-time behaviour of an environment: either a
// performance model's estimates (the simulators) or the hidden ground truth
// (the emulated cluster).
type Timing interface {
	// TaskStartup returns the task-startup overhead, in seconds, paid when
	// launching the task on p processors (TGrid's per-processor JVM/SSH
	// spawning). Called once per task execution.
	TaskStartup(task *dag.Task, p int) float64
	// TaskWork describes the kernel execution on the given processor set:
	// either a fixed duration (comp == nil) or an L07 parallel-task
	// description (per-rank flops and inter-rank bytes) to be placed on
	// the network. Host identities matter on heterogeneous platforms —
	// a load-balanced 1-D kernel runs at its slowest host's pace. Called
	// once per task execution.
	TaskWork(task *dag.Task, hosts []int) (fixed float64, comp []float64, bytes [][]float64)
	// RedistOverhead returns the data-redistribution overhead, in seconds,
	// paid before the transfer itself (TGrid's subnet-manager
	// registration). Called once per executed DAG edge.
	RedistOverhead(pSrc, pDst int) float64
}

// Result reports one execution of a schedule.
type Result struct {
	// Makespan is the application completion time in seconds.
	Makespan float64
	// TaskStart and TaskFinish hold the per-task execution window,
	// including the startup overhead, indexed by task ID.
	TaskStart, TaskFinish []float64
	// TaskStartupDur holds the startup overhead each task paid, indexed by
	// task ID; TaskFinish − TaskStart − TaskStartupDur is the kernel time.
	TaskStartupDur []float64
	// RedistStart and RedistFinish hold the per-edge redistribution
	// windows, keyed by [src, dst] task IDs.
	RedistStart, RedistFinish map[[2]int]float64
	// RedistOverheadDur holds the protocol overhead paid per edge; the
	// remainder of the redistribution window is transfer time.
	RedistOverheadDur map[[2]int]float64
}

// KernelDuration returns the kernel execution time of a task (its window
// minus the startup overhead).
func (r *Result) KernelDuration(task int) float64 {
	return r.TaskFinish[task] - r.TaskStart[task] - r.TaskStartupDur[task]
}

// Breakdown aggregates where the processor-seconds went across the whole
// execution: kernel work, startup overhead, redistribution overhead and
// transfer. Times are plain sums over activities (not weighted by processor
// count), which is how the paper discusses its per-activity overheads.
type Breakdown struct {
	Kernel, Startup, RedistOverhead, RedistTransfer float64
}

// Breakdown computes the aggregate time decomposition of the execution.
func (r *Result) Breakdown() Breakdown {
	var b Breakdown
	for id := range r.TaskStart {
		b.Startup += r.TaskStartupDur[id]
		b.Kernel += r.KernelDuration(id)
	}
	for edge := range r.RedistStart {
		oh := r.RedistOverheadDur[edge]
		b.RedistOverhead += oh
		b.RedistTransfer += r.RedistFinish[edge] - r.RedistStart[edge] - oh
	}
	return b
}

// RedistDuration returns the duration of the redistribution for edge
// src→dst, or 0 if that edge was not executed.
func (r *Result) RedistDuration(src, dst int) float64 {
	k := [2]int{src, dst}
	if _, ok := r.RedistStart[k]; !ok {
		return 0
	}
	return r.RedistFinish[k] - r.RedistStart[k]
}
