package tgrid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simgrid"
)

// Replay invariants over random DAGs and algorithms: precedence respected,
// host exclusivity maintained, redistributions nested between producer and
// consumer.
func TestRunInvariantsQuick(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		t.Fatal(err)
	}
	algos := []sched.Algorithm{sched.CPA{}, sched.HCPA{}, sched.MCPA{}}

	prop := func(seed int64, aIdx uint8) bool {
		g := dag.MustGenerate(dag.GenParams{
			Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: seed,
		})
		algo := algos[int(aIdx)%len(algos)]
		s, err := sched.Build(algo, g, c.Nodes, cost, comm)
		if err != nil {
			return false
		}
		res, err := Run(net, s, ModelTiming{Model: model})
		if err != nil {
			return false
		}
		// Precedence: a task starts only after all its redistributions.
		for _, task := range g.Tasks {
			for _, p := range task.Preds() {
				key := [2]int{p, task.ID}
				if res.TaskStart[task.ID] < res.RedistFinish[key]-1e-9 {
					return false
				}
				if res.RedistStart[key] < res.TaskFinish[p]-1e-9 {
					return false
				}
			}
		}
		// Host exclusivity: per-host task intervals must not overlap.
		type span struct{ start, finish float64 }
		perHost := map[int][]span{}
		for id := range res.TaskStart {
			for _, h := range s.Hosts[id] {
				perHost[h] = append(perHost[h], span{res.TaskStart[id], res.TaskFinish[id]})
			}
		}
		for _, spans := range perHost {
			sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
			for i := 1; i < len(spans); i++ {
				if spans[i].start < spans[i-1].finish-1e-9 {
					return false
				}
			}
		}
		// Makespan is the latest activity end.
		last := 0.0
		for id := range res.TaskFinish {
			if res.TaskFinish[id] > last {
				last = res.TaskFinish[id]
			}
		}
		for k := range res.RedistFinish {
			if res.RedistFinish[k] > last {
				last = res.RedistFinish[k]
			}
		}
		return last <= res.Makespan+1e-9 && last >= res.Makespan-1e-9
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// The virtual replay must be deterministic: identical schedules and timing
// sources give identical results.
func TestRunDeterministicQuick(t *testing.T) {
	c := platform.Bayreuth()
	model := perfmodel.PaperEmpirical()
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		g := dag.MustGenerate(dag.GenParams{
			Tasks: 10, InputMatrices: 4, AddRatio: 0.75, N: 3000, Seed: seed,
		})
		s, err := sched.Build(sched.MCPA{}, g, c.Nodes, cost, comm)
		if err != nil {
			return false
		}
		r1, err1 := Run(net, s, ModelTiming{Model: model})
		r2, err2 := Run(net, s, ModelTiming{Model: model})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Makespan == r2.Makespan
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
