package tgrid

import (
	"fmt"
	"strconv"

	"repro/internal/dag"
	"repro/internal/redist"
	"repro/internal/sched"
	"repro/internal/simgrid"
)

// TimingScaler is a Timing that can additionally report, for a parallel
// task, the multiplicative factor relating its per-rank flop counts to the
// bound base timing's. The replay path uses it to re-arm a recorded parallel
// task by scaling its CPU usage in place instead of rebuilding the whole
// L07 description — the allocation-free equivalent of TaskWork.
type TimingScaler interface {
	Timing
	// TaskScale returns (f, true) when this timing's parallel-task
	// description for the configuration is the base description with all
	// per-rank flop counts multiplied by f (communication unchanged), or
	// (0, false) when no such factor exists and the task must fall back
	// to a fixed TaskWork duration.
	TaskScale(task *dag.Task, p int) (float64, bool)
}

// Unscaled adapts the bound base Timing itself to TimingScaler: replaying
// with Unscaled{base} reproduces Run(net, s, base) exactly.
type Unscaled struct{ Timing }

// TaskScale implements TimingScaler with the identity factor.
func (Unscaled) TaskScale(*dag.Task, int) (float64, bool) { return 1, true }

// ScaledTiming adapts a perturbed performance model to TimingScaler the same
// way ModelTiming adapts a model to Timing. The model's TaskPtaskScale
// (perfmodel.Perturbed implements it) reports the per-configuration flop
// factor relative to its base model, so a Replayer bound with
// ModelTiming{base} replays ScaledTiming{perturbed} without ever
// materialising the perturbed parallel-task descriptions.
type ScaledTiming struct {
	Model interface {
		TaskTime(task *dag.Task, p int) float64
		StartupOverhead(p int) float64
		RedistOverhead(pSrc, pDst int) float64
		TaskPtask(task *dag.Task, p int) (comp []float64, bytes [][]float64)
		TaskPtaskScale(task *dag.Task, p int) (factor float64, ok bool)
	}
}

// TaskStartup implements Timing.
func (m ScaledTiming) TaskStartup(task *dag.Task, p int) float64 {
	return m.Model.StartupOverhead(p)
}

// TaskWork implements Timing (the fixed-duration fallback path).
func (m ScaledTiming) TaskWork(task *dag.Task, hosts []int) (float64, []float64, [][]float64) {
	p := len(hosts)
	comp, bytes := m.Model.TaskPtask(task, p)
	if comp != nil || bytes != nil {
		return 0, comp, bytes
	}
	return m.Model.TaskTime(task, p), nil, nil
}

// RedistOverhead implements Timing.
func (m ScaledTiming) RedistOverhead(pSrc, pDst int) float64 {
	return m.Model.RedistOverhead(pSrc, pDst)
}

// TaskScale implements TimingScaler.
func (m ScaledTiming) TaskScale(task *dag.Task, p int) (float64, bool) {
	return m.Model.TaskPtaskScale(task, p)
}

// replayTask is the recorded execution of one task: a recycled action plus
// everything needed to re-arm it under a new timing.
type replayTask struct {
	act     simgrid.Action
	p       int
	hosts   []int // window into the replayer's flat host copy
	isPtask bool
	cross   bool      // any cross-host communication (pays route latency)
	cpuRes  []int     // CPU resource index per communicating rank
	cpuBase []float64 // base per-rank flop count, scaled by TaskScale
}

// replayEdge is the recorded redistribution of one DAG edge.
type replayEdge struct {
	act        simgrid.Action
	src, dst   int
	pSrc, pDst int
	hasBytes   bool
	cross      bool
}

type ptaskKey struct {
	kernel dag.Kernel
	n, p   int
}

type ptaskDesc struct {
	fixed float64
	comp  []float64
	bytes [][]float64
}

type commKey struct {
	n, pSrc, pDst int
}

// Replayer replays one schedule through the simulator many times under
// varying timings without allocating in steady state — the fast path of the
// robustness trial loop. Bind records the schedule's execution structure
// (actions, usage shapes, dependency counts) against a base Timing; each
// Replay then re-arms the recorded actions under a TimingScaler and a
// (possibly re-parameterised) net of the same shape, and returns the
// makespan. Replay(net, Unscaled{base}) equals Run(net, s, base) bit for
// bit, and Replay with ScaledTiming{perturbed} equals Run under the
// perturbed model.
//
// A Replayer may be re-Bound to different schedules of the same or different
// graphs; its internal caches (parallel-task descriptions keyed by
// configuration, redistribution matrices) persist across binds, so binding
// per trial in a reschedule loop is cheap. The parallel-task cache assumes
// TaskWork depends only on (task.Kernel, task.N, len(hosts)), which holds
// for ModelTiming (performance models describe homogeneous platforms); it is
// invalidated when the base Timing changes. A Replayer is not safe for
// concurrent use.
type Replayer struct {
	net  *simgrid.Net // layout reference from the last Bind
	g    *dag.Graph
	base Timing

	eng  *simgrid.Engine
	rnet *simgrid.Net // net of the Replay in progress
	cur  TimingScaler

	hostsFlat []int
	hosts     [][]int
	estStart  []float64
	order     []int

	tasks       []replayTask
	edges       []replayEdge
	edgeIdx     [][]int
	edgeIdxFlat []int

	waiting0 []int
	waiting  []int
	relFlat  []int // releasedBy, flattened
	relOff   []int // per-task cursor/offset into relFlat
	relEnd   []int
	pairP    []int // host-release prerequisites in discovery order
	preStart []int // per-task range into pairP
	preEnd   []int

	lastOnHost []int
	seenEp     []uint64
	ep         uint64
	ehostsBuf  []int

	ptasks map[ptaskKey]ptaskDesc
	comms  map[commKey][][]float64
	names  []string

	onTask, onEdge func(*simgrid.Engine, *simgrid.Action)
}

// NewReplayer returns an empty replayer.
func NewReplayer() *Replayer {
	r := &Replayer{
		ptasks: make(map[ptaskKey]ptaskDesc),
		comms:  make(map[commKey][][]float64),
	}
	r.onTask = func(e *simgrid.Engine, a *simgrid.Action) { r.taskDone(a.Tag) }
	r.onEdge = func(e *simgrid.Engine, a *simgrid.Action) { r.arrive(r.edges[a.Tag].dst) }
	return r
}

// Bind records the schedule's execution structure against the base timing.
// The schedule must already be valid for the net's cluster (Bind does not
// re-validate); its relevant fields are copied, so schedules backed by a
// sched.Scratch may be overwritten after Bind returns.
func (r *Replayer) Bind(net *simgrid.Net, s *sched.Schedule, base Timing) error {
	g := s.Graph
	n := g.Len()
	clusterSize := net.Cluster.Nodes
	if base != r.base {
		clear(r.ptasks)
		r.base = base
	}
	r.net = net
	r.g = g

	// Snapshot the schedule fields Replay reads after Bind returns.
	total := 0
	for _, hs := range s.Hosts {
		total += len(hs)
	}
	if cap(r.hostsFlat) < total {
		r.hostsFlat = make([]int, 0, total)
	}
	r.hostsFlat = r.hostsFlat[:0]
	r.hosts = resizeIntSlices(r.hosts, n)
	for i, hs := range s.Hosts {
		off := len(r.hostsFlat)
		r.hostsFlat = append(r.hostsFlat, hs...)
		r.hosts[i] = r.hostsFlat[off:len(r.hostsFlat):len(r.hostsFlat)]
	}
	r.estStart = append(r.estStart[:0], s.EstStart...)

	// Launch order: estimated start time, ties by ID (a total order, so any
	// correct sort reproduces Schedule.Order's stable-sort permutation).
	r.order = resizeInts(r.order, n)
	for i := range r.order {
		r.order[i] = i
	}
	sortByEstStart(r.order, r.estStart)

	// Host-occupancy chains: prerequisite counts and, per task, the distinct
	// earlier occupants of its processors, in first-seen order.
	r.lastOnHost = resizeInts(r.lastOnHost, clusterSize)
	for h := range r.lastOnHost {
		r.lastOnHost[h] = -1
	}
	r.waiting0 = resizeInts(r.waiting0, n)
	r.waiting = resizeInts(r.waiting, n)
	r.seenEp = resizeUint64s(r.seenEp, n)
	r.preStart = resizeInts(r.preStart, n)
	r.preEnd = resizeInts(r.preEnd, n)
	r.pairP = r.pairP[:0]
	for _, t := range g.Tasks {
		r.waiting0[t.ID] = t.InDegree()
	}
	for _, id := range r.order {
		r.ep++
		r.preStart[id] = len(r.pairP)
		for _, h := range r.hosts[id] {
			if prev := r.lastOnHost[h]; prev >= 0 && r.seenEp[prev] != r.ep {
				r.seenEp[prev] = r.ep
				r.waiting0[id]++
				r.pairP = append(r.pairP, prev)
			}
			r.lastOnHost[h] = id
		}
		r.preEnd[id] = len(r.pairP)
	}

	// releasedBy[p] lists the tasks waiting on a host p releases, in
	// ascending waiter ID — the order Run's construction produces.
	r.relOff = resizeInts(r.relOff, n)
	r.relEnd = resizeInts(r.relEnd, n)
	clear(r.relOff)
	for _, p := range r.pairP {
		r.relOff[p]++
	}
	off := 0
	for id := 0; id < n; id++ {
		cnt := r.relOff[id]
		r.relOff[id] = off
		r.relEnd[id] = off
		off += cnt
	}
	r.relFlat = resizeInts(r.relFlat, off)
	for w := 0; w < n; w++ {
		for i := r.preStart[w]; i < r.preEnd[w]; i++ {
			p := r.pairP[i]
			r.relFlat[r.relEnd[p]] = w
			r.relEnd[p]++
		}
	}

	// Task records.
	if cap(r.tasks) < n {
		tasks := make([]replayTask, n)
		copy(tasks, r.tasks)
		r.tasks = tasks
	}
	r.tasks = r.tasks[:n]
	for id := 0; id < n; id++ {
		task := g.Task(id)
		rec := &r.tasks[id]
		rec.p = len(r.hosts[id])
		rec.hosts = r.hosts[id]
		rec.act.Name = r.taskName(id)
		rec.act.Tag = id
		rec.act.OnComplete = r.onTask
		d := r.ptaskDesc(task, rec.p, rec.hosts)
		rec.isPtask = d.comp != nil || d.bytes != nil
		rec.cross = false
		rec.cpuRes = rec.cpuRes[:0]
		rec.cpuBase = rec.cpuBase[:0]
		if rec.isPtask {
			net.FillPtask(&rec.act, rec.hosts, d.comp, d.bytes)
			for res := range rec.act.Usage {
				if res >= clusterSize {
					rec.cross = true
					break
				}
			}
			for i, h := range rec.hosts {
				if d.comp != nil && d.comp[i] > 0 {
					rec.cpuRes = append(rec.cpuRes, net.CPU(h))
					rec.cpuBase = append(rec.cpuBase, d.comp[i])
				}
			}
		} else {
			rec.act.Work = 0
			rec.act.Delay = 0
		}
	}

	// Edge records, in (source ID, successor order) — the order Run starts
	// them relative to each source's completion.
	nEdges := g.EdgeCount()
	if cap(r.edges) < nEdges {
		edges := make([]replayEdge, nEdges)
		copy(edges, r.edges)
		r.edges = edges
	}
	r.edges = r.edges[:nEdges]
	r.edgeIdx = resizeIntSlices(r.edgeIdx, n)
	r.edgeIdxFlat = resizeInts(r.edgeIdxFlat, nEdges)
	ei := 0
	ehosts := r.ehostsBuf
	for id := 0; id < n; id++ {
		task := g.Task(id)
		succs := task.Succs()
		start := ei
		for _, succ := range succs {
			rec := &r.edges[ei]
			r.edgeIdxFlat[ei] = ei
			rec.src, rec.dst = id, succ
			rec.pSrc, rec.pDst = len(r.hosts[id]), len(r.hosts[succ])
			rec.act.Name = "redist"
			rec.act.Tag = ei
			rec.act.OnComplete = r.onEdge
			rec.hasBytes = task.OutputBytes() > 0
			if rec.hasBytes {
				full, err := r.commMatrix(task.N, rec.pSrc, rec.pDst)
				if err != nil {
					return fmt.Errorf("tgrid: edge %d->%d: %w", id, succ, err)
				}
				ehosts = append(ehosts[:0], r.hosts[id]...)
				ehosts = append(ehosts, r.hosts[succ]...)
				net.FillPtask(&rec.act, ehosts, nil, full)
				rec.cross = len(rec.act.Usage) > 0
			} else {
				rec.act.Work = 0
				rec.act.Delay = 0
				rec.cross = false
			}
			ei++
		}
		r.edgeIdx[id] = r.edgeIdxFlat[start:ei:ei]
	}
	r.ehostsBuf = ehosts
	return nil
}

// Replay re-runs the bound schedule under the given timing on a net with the
// same resource layout as the bind net (same node count and backplane
// presence; capacities and latencies may differ) and returns the makespan.
func (r *Replayer) Replay(net *simgrid.Net, timing TimingScaler) (float64, error) {
	if r.g == nil {
		return 0, fmt.Errorf("tgrid: replay before bind")
	}
	if net.Cluster.Nodes != r.net.Cluster.Nodes || net.HasBackplane() != r.net.HasBackplane() {
		return 0, fmt.Errorf("tgrid: replay net layout differs from bind net")
	}
	if r.eng == nil {
		r.eng = net.NewEngine()
	} else {
		net.ResetEngine(r.eng)
	}
	for i := range r.tasks {
		r.tasks[i].act.Reset()
	}
	for i := range r.edges {
		r.edges[i].act.Reset()
	}
	copy(r.waiting, r.waiting0)
	r.rnet = net
	r.cur = timing
	n := len(r.tasks)
	for id := 0; id < n; id++ {
		if r.waiting[id] == 0 {
			r.launch(id)
		}
	}
	makespan, err := r.eng.Run()
	r.rnet = nil
	r.cur = nil
	if err != nil {
		return 0, fmt.Errorf("tgrid: %w", err)
	}
	for id := 0; id < n; id++ {
		if r.waiting[id] != 0 {
			return 0, fmt.Errorf("tgrid: task %d never became ready (deadlocked schedule)", id)
		}
	}
	return makespan, nil
}

func (r *Replayer) launch(id int) {
	rec := &r.tasks[id]
	task := r.g.Task(id)
	startup := r.cur.TaskStartup(task, rec.p)
	if startup < 0 {
		panic(fmt.Sprintf("tgrid: negative startup for task %d", id))
	}
	a := &rec.act
	scaled := false
	if rec.isPtask {
		if f, ok := r.cur.TaskScale(task, rec.p); ok {
			for k, res := range rec.cpuRes {
				a.Usage[res] = rec.cpuBase[k] * f
			}
			a.Work = 1
			lat := 0.0
			if rec.cross {
				lat = 2 * r.rnet.Cluster.LinkLatency
			}
			// Mirrors Run's Delay = latency + (startup + fixed); fixed
			// is 0 on the parallel-task path, so this is bit-identical.
			a.Delay = lat + startup
			scaled = true
		}
	}
	if !scaled {
		fixed, comp, bytes := r.cur.TaskWork(task, rec.hosts)
		if comp != nil || bytes != nil {
			panic(fmt.Sprintf("tgrid: replay timing returned a parallel task for task %d without a scale factor", id))
		}
		a.Work = 0
		a.Delay = startup + fixed
	}
	r.eng.Add(a)
}

func (r *Replayer) startEdge(ei int) {
	rec := &r.edges[ei]
	overhead := r.cur.RedistOverhead(rec.pSrc, rec.pDst)
	a := &rec.act
	if rec.hasBytes {
		lat := 0.0
		if rec.cross {
			lat = 2 * r.rnet.Cluster.LinkLatency
		}
		a.Delay = lat + overhead
	} else {
		a.Delay = overhead
	}
	r.eng.Add(a)
}

func (r *Replayer) taskDone(id int) {
	for _, ei := range r.edgeIdx[id] {
		r.startEdge(ei)
	}
	for i := r.relOff[id]; i < r.relEnd[id]; i++ {
		r.arrive(r.relFlat[i])
	}
}

func (r *Replayer) arrive(id int) {
	r.waiting[id]--
	if r.waiting[id] < 0 {
		panic(fmt.Sprintf("tgrid: task %d over-released", id))
	}
	if r.waiting[id] == 0 {
		r.launch(id)
	}
}

// ptaskDesc returns the base timing's TaskWork outputs for a configuration,
// memoised by (kernel, n, p).
func (r *Replayer) ptaskDesc(task *dag.Task, p int, hosts []int) ptaskDesc {
	key := ptaskKey{kernel: task.Kernel, n: task.N, p: p}
	if d, ok := r.ptasks[key]; ok {
		return d
	}
	fixed, comp, bytes := r.base.TaskWork(task, hosts)
	d := ptaskDesc{fixed: fixed, comp: comp, bytes: bytes}
	r.ptasks[key] = d
	return d
}

// commMatrix returns the full (pSrc+pDst)² byte matrix of a redistribution,
// memoised by (n, pSrc, pDst) — a pure function of the 1-D block overlap
// plan.
func (r *Replayer) commMatrix(n, pSrc, pDst int) ([][]float64, error) {
	key := commKey{n: n, pSrc: pSrc, pDst: pDst}
	if m, ok := r.comms[key]; ok {
		return m, nil
	}
	sd, err := redist.NewDist(n, pSrc)
	if err != nil {
		return nil, err
	}
	dd, err := redist.NewDist(n, pDst)
	if err != nil {
		return nil, err
	}
	m, err := redist.CommMatrix(sd, dd)
	if err != nil {
		return nil, err
	}
	full := make([][]float64, pSrc+pDst)
	for i := range full {
		full[i] = make([]float64, pSrc+pDst)
	}
	for i := 0; i < pSrc; i++ {
		for j := 0; j < pDst; j++ {
			full[i][pSrc+j] = float64(m[i][j])
		}
	}
	r.comms[key] = full
	return full, nil
}

func (r *Replayer) taskName(id int) string {
	for len(r.names) <= id {
		r.names = append(r.names, "task-"+strconv.Itoa(len(r.names)))
	}
	return r.names[id]
}

// sortByEstStart sorts ids by estimated start time, ties by ID. The key is a
// total order, so this reproduces Schedule.Order's stable-sort permutation;
// an insertion sort (schedules are tens of tasks) keeps the bind path
// allocation-free where sort.SliceStable would not.
func sortByEstStart(ids []int, est []float64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if est[a] < est[b] || (est[a] == est[b] && a < b) {
				break
			}
			ids[j-1], ids[j] = b, a
		}
	}
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeUint64s(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func resizeIntSlices(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}
