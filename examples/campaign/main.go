// Campaign example — the §IX what-if scenario end to end: start the
// scheduling service in-process, submit a declarative campaign that sweeps
// the Bayreuth environment from 8 to 256 nodes under the analytic and
// empirical simulators, poll it to completion over the typed client, and
// print the report plus the registry economics (each derived platform is
// fitted once and reused by every run of the grid).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)

	// 1. The service and an HTTP server on a loopback port.
	svc := service.New(service.DefaultOptions())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("reprosrv serving on %s\n", base)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	client := service.NewClient(base)
	if err := client.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// 2. The what-if question: the paper validated its models on 32 nodes —
	//    do its conclusions (the analytic simulator flips winners, the
	//    empirical one does not) survive on hypothetical platforms from 8 to
	//    256 nodes? The campaign sweeps the scale axis under both models.
	spec := campaign.Spec{
		Name:       "bayreuth-scale-sweep",
		Platforms:  campaign.PlatformAxis{Base: "bayreuth", Nodes: []int{8, 16, 32, 64, 128, 256}},
		Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
		Algorithms: []string{"HCPA", "MCPA"},
		Models:     []string{"analytic", "empirical"},
	}

	job, err := client.SubmitCampaign(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted %s (%s): %d platform scales × %d models, polling…\n",
		job.ID, job.Kind, len(spec.Platforms.Nodes), len(spec.Models))

	start := time.Now()
	done, err := client.WaitCampaign(ctx, job.ID, 200*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	if done.State != service.JobDone {
		log.Fatalf("campaign ended %s: %s", done.State, done.Error)
	}
	fmt.Printf("campaign done in %.1fs\n\n%s", time.Since(start).Seconds(), done.Output)

	// 3. The registry after the sweep: one fit per derived platform, reused
	//    by every later run of the grid (hits > 0).
	models, err := client.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted-model registry after the sweep:")
	for _, m := range models {
		fmt.Printf("  %-9s env=%-14s build=%8.1fms hits=%d\n",
			m.Kind, m.Environment, m.BuildMillis, m.Hits)
	}

	// 4. Graceful shutdown.
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := svc.Close(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nshut down cleanly")
}
