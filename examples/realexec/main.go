// Realexec: the TGrid runtime actually executing a mixed-parallel
// application — real parallel matrix kernels on goroutine ranks, real
// message-passing redistributions — and validating the numerical result
// against a sequential reference. Uses laptop-scale matrices (n = 256).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dag"
	"repro/internal/sched"
	"repro/internal/tgrid"
)

func main() {
	log.SetFlags(0)

	g, err := dag.Generate(dag.GenParams{
		Tasks: 8, InputMatrices: 4, AddRatio: 0.5, N: 256, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application %s: %d tasks, %d edges (n=256 matrices)\n",
		g.Name, g.Len(), g.EdgeCount())

	// Schedule for an 8-processor run with ideal-speedup costs: the real
	// backend only needs the allocation and host assignment.
	cost := func(t *dag.Task, p int) float64 { return t.Flops() / float64(p) }
	s, err := sched.Build(sched.HCPA{}, g, 8, cost, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nallocations:", s.Alloc)

	opts := tgrid.RealOptions{Seed: 99}
	res, err := tgrid.RunReal(s, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal execution finished in %v\n", res.Makespan)
	for id, d := range res.TaskWall {
		fmt.Printf("  %-10s p=%-2d kernel wall time %v\n", g.Task(id).Name, s.Alloc[id], d)
	}

	// Verify against a sequential reference computation.
	want := tgrid.SequentialReference(g, s, opts)
	fmt.Println("\noutput verification (Frobenius norms of exit-task outputs):")
	ok := true
	for id, norm := range want {
		got := res.Outputs[id]
		status := "OK"
		if math.Abs(got-norm)/norm > 1e-9 {
			status = "MISMATCH"
			ok = false
		}
		fmt.Printf("  task %-3d parallel %.6e  sequential %.6e  %s\n", id, got, norm, status)
	}
	if !ok {
		log.Fatal("parallel execution diverged from the sequential reference")
	}
	fmt.Println("\nparallel execution matches the sequential reference bit-for-bit scale.")
}
