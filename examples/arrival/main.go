// Arrival example — the online dimension the paper's offline case study
// stops short of: what happens when workflows don't sit in a benchmark
// suite but arrive over time on a shared cluster? This example builds a
// mixed job population — an externally authored workflow imported from a
// committed DOT trace plus two canonical shapes (Strassen-style recursion
// and a wide reduction tree) — draws Poisson arrivals over it, schedules
// each job online with HCPA and MCPA against the fitted analytic model,
// runs them FCFS on 8-node partitions of the emulated Bayreuth cluster,
// and prints the online scorecard: queueing delay, utilisation, makespan
// stretch, fairness, and how well the fitted model predicted the service
// times.
//
// The spec is the exact worked example of docs/WORKLOADS.md; the golden
// corpus (testdata/golden/arrival-example.txt) pins its output byte for
// byte.
//
// Run from the repository root (the spec references the committed trace by
// a root-relative path):
//
//	go run ./examples/arrival
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/arrival"
	"repro/internal/campaign"
)

func main() {
	log.SetFlags(0)

	// A population of three job classes: the committed linalg-pipeline DOT
	// trace (imported at plan time) and the strassen/reduction shapes at
	// matrix size 2000. Twelve jobs arrive Poisson at 0.02 jobs/s — about
	// one per 50 s against service times of 130–330 s — on partitions of 8
	// of Bayreuth's 32 nodes, so four jobs run concurrently and bursts
	// queue.
	spec := arrival.Spec{
		Name: "bayreuth-online-arrivals",
		Workloads: campaign.WorkloadAxis{
			Traces: []campaign.TraceRef{{Path: "testdata/traces/linalg-pipeline.dot"}},
			Shapes: []string{"strassen", "reduction"},
			Sizes:  []int{2000},
		},
		Algorithms:  []string{"HCPA", "MCPA"},
		Rate:        0.02,
		Jobs:        12,
		ArrivalSeed: 7,
		Partition:   8,
	}

	plan, err := spec.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrival scenario %q: %d jobs over %d classes, %d algorithms\n\n",
		spec.Name, len(plan.Times), len(plan.Classes), len(plan.Algorithms))

	start := time.Now()
	res, err := repro.RunArrival(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	res.Write(os.Stdout)
	fmt.Fprintf(os.Stderr, "\nscenario completed in %.1fs\n", time.Since(start).Seconds())
}
