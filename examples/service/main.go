// Service example: start the scheduling service in-process, then drive it
// through the typed HTTP client exactly as a remote caller would — schedule
// the same DAG twice (the second request hits the fitted-model registry
// cache), run a study on the job queue, and inspect the registry.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/dag"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)

	// 1. The service and an HTTP server on a loopback port.
	svc := service.New(service.DefaultOptions())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("reprosrv serving on %s\n", base)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := service.NewClient(base)
	if err := client.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// 2. A DAG to schedule: 10 moldable matrix tasks (one Table I cell).
	g, err := dag.Generate(dag.GenParams{
		Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Schedule it twice under the empirical model. The first request
	//    runs the §VII campaign and fits the model; the second reuses it.
	req := service.ScheduleRequest{DAG: g, Algorithm: "HCPA", Model: "empirical"}
	for i := 1; i <= 2; i++ {
		start := time.Now()
		resp, err := client.Schedule(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nschedule #%d (%s/%s): cache_hit=%v predicted makespan %.1fs (%.0f ms round trip)\n",
			i, resp.Algorithm, resp.Model, resp.CacheHit, resp.SimMakespan,
			float64(time.Since(start))/float64(time.Millisecond))
		if i == 1 {
			for _, t := range resp.Tasks {
				fmt.Printf("  %-10s p=%-2d start=%6.1fs hosts=%v\n", t.Name, t.P, t.EstStart, t.Hosts)
			}
		}
	}

	// 4. A study on the job queue: Figure 3's startup-overhead curve.
	job, err := client.SubmitStudy(ctx, service.StudyRequest{Study: "fig3"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted %s (%s), polling…\n", job.ID, job.Kind)
	done, err := client.WaitJob(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s: %s\n%s", done.ID, done.State, done.Output)

	// 5. The registry: which models were fitted, at what cost.
	models, err := client.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted-model registry:")
	for _, m := range models {
		fmt.Printf("  %-9s env=%-9s seed=%-6d build=%6.1fms hits=%d\n",
			m.Kind, m.Environment, m.Seed, m.BuildMillis, m.Hits)
	}

	// 6. Graceful shutdown.
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := svc.Close(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nshut down cleanly")
}
