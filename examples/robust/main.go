// Robustness example — the §V question, quantified: the paper shows the
// analytic simulator picks the wrong HCPA-vs-MCPA winner on a large
// fraction of instances, i.e. the model is wrong enough to flip the
// conclusion. This example asks how much model error the simulated winner
// survives: it sweeps the Bayreuth environment's analytic model through
// increasing levels of multiplicative prediction noise (task times, startup
// overheads, redistribution overheads), re-runs the winner determination 16
// times per level, and prints the winner-stability report — per-level flip
// probabilities, confidence intervals on the makespan ratio, and the
// critical noise level at which instances lose their base winner.
//
// The spec is the exact worked example of docs/ROBUSTNESS.md; the golden
// corpus (testdata/golden/robustness-example.txt) pins its output byte for
// byte.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/robust"
)

func main() {
	log.SetFlags(0)

	// The stability question: HCPA vs MCPA on Bayreuth under the analytic
	// model, n=2000 workload — §V's setting. 16 perturbation draws at each
	// of four noise levels, per-configuration shape noise with sigma 1 on
	// the three model predictions (the default noise shape): at level ℓ,
	// every individual prediction is off by an independent lognormal
	// factor of sigma ℓ.
	spec := robust.Spec{
		Spec: campaign.Spec{
			Name:       "bayreuth-hcpa-mcpa-stability",
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
			Algorithms: []string{"HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{
			Trials: 16,
			Levels: []float64{0.02, 0.05, 0.1, 0.2},
		},
	}

	plan, err := spec.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("robustness study %q: %d campaign runs × %d levels × %d trials = %d trial runs\n\n",
		spec.Name, plan.Campaign.Runs(), len(plan.Spec.Robustness.Levels),
		plan.Spec.Robustness.Trials, plan.TrialRuns())

	start := time.Now()
	res, err := repro.RunRobustness(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	res.Write(os.Stdout)
	fmt.Fprintf(os.Stderr, "\nstudy completed in %.1fs\n", time.Since(start).Seconds())
}
