// Modelcompare: the paper's story in one program. One DAG, the HCPA and
// MCPA algorithms, and the three simulator variants — analytic, profile-
// based, empirical — each compared against the emulated cluster. Shows how
// the analytic simulator picks the wrong winner while the refined ones
// agree with the experiment.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

func main() {
	log.SetFlags(0)
	truth := cluster.Bayreuth()
	em, err := cluster.NewEmulator(truth, 42)
	if err != nil {
		log.Fatal(err)
	}
	net, err := simgrid.NewNet(truth.Cluster)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the profiling campaigns against the environment ...")
	profModel, err := profiler.BuildProfileModel(em, profiler.DefaultProfileOptions())
	if err != nil {
		log.Fatal(err)
	}
	empModel, err := profiler.BuildEmpiricalModel(em, profiler.DefaultEmpiricalOptions())
	if err != nil {
		log.Fatal(err)
	}
	models := []perfmodel.Model{perfmodel.NewAnalytic(truth.Cluster), profModel, empModel}

	g := dag.MustGenerate(dag.GenParams{
		Tasks: 10, InputMatrices: 8, AddRatio: 0.75, N: 2000, Seed: 12,
	})
	fmt.Printf("\napplication %s (%d tasks, width %d)\n\n", g.Name, g.Len(), g.Width())
	fmt.Printf("%-10s %22s %22s %14s\n", "model", "HCPA sim/exp [s]", "MCPA sim/exp [s]", "winner sim/exp")

	for _, model := range models {
		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, truth.Cluster)
		type outcome struct{ sim, exp float64 }
		res := map[string]outcome{}
		for _, algo := range []sched.Algorithm{sched.HCPA{}, sched.MCPA{}} {
			s, err := sched.Build(algo, g, truth.Cluster.Nodes, cost, comm)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				log.Fatal(err)
			}
			exp, err := em.MeasureMakespan(s, 1)
			if err != nil {
				log.Fatal(err)
			}
			res[algo.Name()] = outcome{sim: sim.Makespan, exp: exp}
		}
		simWinner, expWinner := "HCPA", "HCPA"
		if res["MCPA"].sim < res["HCPA"].sim {
			simWinner = "MCPA"
		}
		if res["MCPA"].exp < res["HCPA"].exp {
			expWinner = "MCPA"
		}
		marker := ""
		if simWinner != expWinner {
			marker = "  <-- simulation wrong"
		}
		fmt.Printf("%-10s %10.1f / %8.1f %10.1f / %8.1f %8s / %s%s\n",
			model.Name(),
			res["HCPA"].sim, res["HCPA"].exp,
			res["MCPA"].sim, res["MCPA"].exp,
			simWinner, expWinner, marker)
	}

	fmt.Println("\nThe analytic row underestimates both makespans by a factor and can")
	fmt.Println("invert the comparison; the profile and empirical rows track the")
	fmt.Println("measured times closely enough to rank the algorithms correctly.")
}
