// Workflow: schedule a hand-built scientific workflow — a map/reduce-shaped
// mixed-parallel pipeline — with CPA, HCPA and MCPA, and compare the
// schedules both in simulation and on the emulated cluster. Demonstrates
// CPA's over-allocation flaw and how the two remedies behave.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

// buildWorkflow models a typical mixed-parallel computation: four
// independent n×n multiplication "map" branches, pairwise combination
// (additions), a reduction multiplication, and a final correction addition.
func buildWorkflow(n int) *dag.Graph {
	g := dag.New("science-workflow")
	var branches []int
	for i := 0; i < 4; i++ {
		t := g.AddTask(dag.KernelMul, n)
		branches = append(branches, t.ID)
	}
	c1 := g.AddTask(dag.KernelAdd, n)
	c2 := g.AddTask(dag.KernelAdd, n)
	g.AddEdge(branches[0], c1.ID)
	g.AddEdge(branches[1], c1.ID)
	g.AddEdge(branches[2], c2.ID)
	g.AddEdge(branches[3], c2.ID)
	reduce := g.AddTask(dag.KernelMul, n)
	g.AddEdge(c1.ID, reduce.ID)
	g.AddEdge(c2.ID, reduce.ID)
	final := g.AddTask(dag.KernelAdd, n)
	g.AddEdge(reduce.ID, final.ID)
	return g
}

func main() {
	log.SetFlags(0)
	truth := cluster.Bayreuth()
	g := buildWorkflow(2000)
	fmt.Printf("workflow: %d tasks, %d edges, width %d, cluster of %d nodes\n\n",
		g.Len(), g.EdgeCount(), g.Width(), truth.Cluster.Nodes)

	model := perfmodel.NewAnalytic(truth.Cluster)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, truth.Cluster)
	net, err := simgrid.NewNet(truth.Cluster)
	if err != nil {
		log.Fatal(err)
	}
	em, err := cluster.NewEmulator(truth, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-28s %12s %12s\n", "algo", "allocations", "simulated", "measured")
	for _, algo := range []sched.Algorithm{sched.CPA{}, sched.HCPA{}, sched.MCPA{}, sched.Sequential{}} {
		s, err := sched.Build(algo, g, truth.Cluster.Nodes, cost, comm)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
		if err != nil {
			log.Fatal(err)
		}
		exp, err := em.MeasureMakespan(s, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-28s %10.1f s %10.1f s\n", algo.Name(), fmt.Sprint(s.Alloc), sim.Makespan, exp)
	}

	fmt.Println("\nNote how the algorithms with larger allocations look better in")
	fmt.Println("simulation than they are in reality: the analytic model does not")
	fmt.Println("charge per-processor startup or redistribution overheads (§V-C).")
}
