// Quickstart: generate a random mixed-parallel application, schedule it
// with HCPA under the analytic performance model, simulate the schedule,
// and execute it on the emulated cluster — the paper's whole pipeline on a
// single DAG.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	// 1. A random application: 10 moldable matrix tasks, width 4,
	//    half additions, n=2000 matrices (one cell of Table I).
	g, err := dag.Generate(dag.GenParams{
		Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application %s: %d tasks (%d mul, %d add), %d edges, width %d\n",
		g.Name, g.Len(), g.CountKernel(dag.KernelMul), g.CountKernel(dag.KernelAdd),
		g.EdgeCount(), g.Width())

	// 2. The platform and the analytic performance model (§IV).
	truth := cluster.Bayreuth()
	model := perfmodel.NewAnalytic(truth.Cluster)

	// 3. Two-phase scheduling with HCPA.
	s, err := sched.Build(sched.HCPA{}, g, truth.Cluster.Nodes,
		perfmodel.CostFunc(model), perfmodel.CommFunc(model, truth.Cluster))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschedule (HCPA, analytic model):")
	for _, id := range s.Order() {
		fmt.Printf("  %-10s p=%-2d start=%6.1fs hosts=%v\n",
			g.Task(id).Name, s.Alloc[id], s.EstStart[id], s.Hosts[id])
	}

	// 4. Simulate the schedule (what the paper's simulator reports)...
	net, err := simgrid.NewNet(truth.Cluster)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
	if err != nil {
		log.Fatal(err)
	}

	// 5. ...and execute it on the emulated cluster (the "experiment").
	em, err := cluster.NewEmulator(truth, 42)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := em.Execute(s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated makespan:   %7.1f s\n", sim.Makespan)
	fmt.Printf("measured makespan:    %7.1f s\n", exp.Makespan)
	fmt.Printf("simulation error:     %7.1f %%  (the gap the paper investigates)\n",
		100*(exp.Makespan-sim.Makespan)/sim.Makespan)

	// 6. Inspect the measured execution as a Gantt chart.
	tr := trace.FromResult(s, exp)
	fmt.Printf("\nmean processor utilisation on the cluster: %.0f%%\n\n", 100*tr.MeanUtilization())
	tr.Gantt(os.Stdout, 72)
}
