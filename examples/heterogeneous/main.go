// Heterogeneous: the case study ported to HCPA's original setting — a
// cluster mixing two node speeds. Shows the reference-cluster allocation,
// the speed-aware mapping, and that profiled simulation stays sound where
// analytic simulation does not.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

func main() {
	log.SetFlags(0)

	// A 32-node cluster: half at 250 MFlop/s, half at 500 MFlop/s.
	powers := make([]float64, 32)
	for i := range powers {
		if i < 16 {
			powers[i] = 250e6
		} else {
			powers[i] = 500e6
		}
	}
	hc := platform.NewHeterogeneous("two-speed", powers, 125e6, 100e-6)
	fmt.Printf("platform %s: %d nodes, reference speed %.0f MFlop/s, total %.0f MFlop/s\n",
		hc.Name, hc.Nodes, hc.NodePower/1e6, hc.TotalPower()/1e6)

	truth := cluster.Bayreuth()
	truth.Cluster = hc
	em, err := cluster.NewEmulator(truth, 11)
	if err != nil {
		log.Fatal(err)
	}
	net, err := simgrid.NewNet(hc)
	if err != nil {
		log.Fatal(err)
	}
	profModel, err := profiler.BuildProfileModel(em, profiler.DefaultProfileOptions())
	if err != nil {
		log.Fatal(err)
	}

	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 21})
	fmt.Printf("\napplication %s: %d tasks, width %d\n\n", g.Name, g.Len(), g.Width())

	fmt.Printf("%-10s %-6s %12s %12s   placement (fast nodes are 16..31)\n",
		"model", "algo", "simulated", "measured")
	for _, model := range []perfmodel.Model{perfmodel.NewAnalytic(hc), profModel} {
		cost := perfmodel.CostFunc(model)
		comm := perfmodel.CommFunc(model, hc)
		for _, algo := range []sched.Algorithm{sched.HCPA{}, sched.MCPA{}} {
			s, err := sched.BuildHetero(algo, g, hc, cost, comm)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				log.Fatal(err)
			}
			exp, err := em.MeasureMakespan(s, 1)
			if err != nil {
				log.Fatal(err)
			}
			fast := 0
			total := 0
			for id := range s.Alloc {
				for _, h := range s.Hosts[id] {
					total++
					if hc.PowerOf(h) > 250e6 {
						fast++
					}
				}
			}
			fmt.Printf("%-10s %-6s %10.1f s %10.1f s   %d/%d slots on fast nodes\n",
				model.Name(), algo.Name(), sim.Makespan, exp, fast, total)
		}
	}

	fmt.Println("\nThe speed-aware mapping concentrates work on fast nodes; the profile")
	fmt.Println("simulator tracks the measured times, the analytic one undershoots by")
	fmt.Println("the same factor as on the homogeneous cluster.")
}
