package repro

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/robust"
	"repro/internal/service"
)

// The golden snapshot corpus: canonical renderings of every paper artifact
// (Table I, Figures 1–8, Table II) plus the campaign and robustness worked
// examples, committed under testdata/golden and diffed byte-for-byte. The
// corpus is the repository's last line of defence against silent output
// drift — the determinism tests prove a report is stable across worker
// counts within one build, the corpus proves it is stable across commits.
//
// To refresh after an intentional output change:
//
//	go test -run 'TestGolden' -update .

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden snapshots instead of diffing against them")

// goldenCompare diffs got against testdata/golden/<name>, or rewrites the
// snapshot under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot %s (regenerate with: go test -run TestGolden -update .): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	line, gotLine, wantLine := firstDiff(got, want)
	t.Errorf("%s drifted from its golden snapshot at line %d:\n  got:  %q\n  want: %q\n(if the change is intentional: go test -run TestGolden -update .)",
		path, line, gotLine, wantLine)
}

// firstDiff locates the first differing line, 1-based.
func firstDiff(got, want []byte) (int, string, string) {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) || i < len(w); i++ {
		gl, wl := "<eof>", "<eof>"
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl != wl {
			return i + 1, gl, wl
		}
	}
	return 0, "", ""
}

// goldenLab builds the evaluation lab once for every golden study subtest.
var goldenLab struct {
	once sync.Once
	lab  *experiments.Lab
	err  error
}

func goldenSharedLab() (*experiments.Lab, error) {
	goldenLab.once.Do(func() {
		goldenLab.lab, goldenLab.err = experiments.NewLab(experiments.DefaultConfig())
	})
	return goldenLab.lab, goldenLab.err
}

// goldenStudies is the paper-artifact half of the corpus.
var goldenStudies = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2",
}

// TestGoldenStudies pins every paper artifact byte-for-byte.
func TestGoldenStudies(t *testing.T) {
	cfg := experiments.DefaultConfig()
	for _, name := range goldenStudies {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			err := experiments.RenderStudy(context.Background(), name, cfg, goldenSharedLab, &buf)
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, name+".txt", buf.Bytes())
		})
	}
}

// goldenCampaignSpec is the campaign half of the corpus: a 2-platform ×
// 2-model sweep of the n=2000 suite, the same shape the CI service smoke
// submits.
func goldenCampaignSpec() campaign.Spec {
	return campaign.Spec{
		Name:       "golden-campaign",
		Platforms:  campaign.PlatformAxis{Base: "bayreuth", Nodes: []int{8, 16}},
		Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
		Algorithms: []string{"HCPA", "MCPA"},
		Models:     []string{"analytic", "empirical"},
	}
}

// TestGoldenCampaignExample pins the campaign report byte-for-byte.
func TestGoldenCampaignExample(t *testing.T) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := campaign.Engine{Source: reg, Workers: cfg.Parallelism}
	res, err := eng.Run(context.Background(), goldenCampaignSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	goldenCompare(t, "campaign-example.txt", buf.Bytes())
}

// goldenRobustnessSpec is the robustness half of the corpus — the exact
// spec examples/robust runs and docs/ROBUSTNESS.md walks through, so the
// committed snapshot, the example's output and the documentation's worked
// example can never drift apart.
func goldenRobustnessSpec() robust.Spec {
	return robust.Spec{
		Spec: campaign.Spec{
			Name:       "bayreuth-hcpa-mcpa-stability",
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
			Algorithms: []string{"HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{
			Trials: 16,
			Levels: []float64{0.02, 0.05, 0.1, 0.2},
		},
	}
}

// TestGoldenRobustnessExample pins the robustness report byte-for-byte.
func TestGoldenRobustnessExample(t *testing.T) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := robust.Engine{Source: reg, Workers: cfg.Parallelism}
	res, err := eng.Run(context.Background(), goldenRobustnessSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	goldenCompare(t, "robustness-example.txt", buf.Bytes())
}

// goldenRobustnessSequentialSpec is the stopping-enabled variant of the
// robustness example: the same study with the Wilson stop rule on, pinning
// the sequential report (per-cell trials saved) byte-for-byte.
func goldenRobustnessSequentialSpec() robust.Spec {
	spec := goldenRobustnessSpec()
	spec.Name = "bayreuth-hcpa-mcpa-stability-sequential"
	spec.Robustness.Sequential = true
	return spec
}

// TestGoldenRobustnessSequential pins the sequential-stopping report
// byte-for-byte.
func TestGoldenRobustnessSequential(t *testing.T) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := robust.Engine{Source: reg, Workers: cfg.Parallelism}
	res, err := eng.Run(context.Background(), goldenRobustnessSequentialSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	goldenCompare(t, "robustness-sequential.txt", buf.Bytes())
}

// goldenClusterShardSpec is the spec CI's sharded-execution smoke submits
// to a two-replica cluster (a 3-cell grid, one replica SIGKILL'd mid-cell).
// The snapshot is regenerated here by an in-process run: sharded execution
// is byte-identical to a monolithic run, so one golden pins both paths —
// the CI job byte-compares the surviving cluster's report against the same
// file.
func goldenClusterShardSpec() robust.Spec {
	return robust.Spec{
		Spec: campaign.Spec{
			Name:       "shard-smoke",
			Seed:       42,
			Platforms:  campaign.PlatformAxis{Base: "bayreuth", Nodes: []int{6, 8, 16}},
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000, 3000}, SuiteSeeds: []int64{2011}},
			Algorithms: []string{"CPA", "HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{
			Trials: 64,
			Levels: []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.5},
		},
	}
}

// TestGoldenClusterShard pins the sharded-execution smoke report
// byte-for-byte.
func TestGoldenClusterShard(t *testing.T) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := robust.Engine{Source: reg, Workers: cfg.Parallelism}
	res, err := eng.Run(context.Background(), goldenClusterShardSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	goldenCompare(t, "cluster-shard.txt", buf.Bytes())
}

// goldenArrivalSpec is the online-arrival corner of the corpus — the exact
// spec examples/arrival runs, docs/WORKLOADS.md walks through and the CI
// arrivals smoke submits over HTTP: a mixed population of the committed DOT
// trace plus two canonical shapes, Poisson arrivals on 8-node partitions.
func goldenArrivalSpec() arrival.Spec {
	return arrival.Spec{
		Name: "bayreuth-online-arrivals",
		Workloads: campaign.WorkloadAxis{
			Traces: []campaign.TraceRef{{Path: "testdata/traces/linalg-pipeline.dot"}},
			Shapes: []string{"strassen", "reduction"},
			Sizes:  []int{2000},
		},
		Algorithms:  []string{"HCPA", "MCPA"},
		Rate:        0.02,
		Jobs:        12,
		ArrivalSeed: 7,
		Partition:   8,
	}
}

// TestGoldenArrivalExample pins the online-arrival report byte-for-byte.
func TestGoldenArrivalExample(t *testing.T) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := arrival.Engine{Source: reg, Workers: cfg.Parallelism}
	res, err := eng.Run(context.Background(), goldenArrivalSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	goldenCompare(t, "arrival-example.txt", buf.Bytes())
}

// TestGoldenCorpusComplete fails when a committed snapshot no longer has a
// test regenerating it, so the corpus cannot accumulate dead files.
func TestGoldenCorpusComplete(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"campaign-example.txt":      true,
		"robustness-example.txt":    true,
		"robustness-sequential.txt": true,
		"cluster-shard.txt":         true,
		"arrival-example.txt":       true,
	}
	for _, name := range goldenStudies {
		want[name+".txt"] = true
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("testdata/golden/%s has no regenerating test; delete it or wire it up", e.Name())
		}
		delete(want, e.Name())
	}
	for name := range want {
		t.Errorf("golden snapshot %s is missing (run: go test -run TestGolden -update .)", name)
	}
}

// TestGoldenMatchesExampleSpec keeps the corpus honest about its promise:
// the robustness snapshot's header must carry the example's campaign name
// and Monte Carlo parameters, so a drive-by edit of either spec shows up
// as a corpus failure rather than a silently re-pinned snapshot.
func TestGoldenMatchesExampleSpec(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "robustness-example.txt"))
	if err != nil {
		t.Skipf("no snapshot yet: %v", err)
	}
	spec := goldenRobustnessSpec()
	for _, want := range []string{
		fmt.Sprintf("Campaign %q", spec.Name),
		fmt.Sprintf("trials=%d per level", spec.Robustness.Trials),
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("robustness snapshot lacks %q; spec and corpus drifted", want)
		}
	}
}
