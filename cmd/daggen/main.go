// Command daggen generates random mixed-parallel application DAGs with the
// paper's generator (§II-B) and writes them as JSON.
//
// Usage:
//
//	daggen -suite -o dags/              # the full 54-instance Table I suite
//	daggen -width 8 -ratio 0.5 -n 2000 -seed 7   # one instance to stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daggen: ")
	var (
		suite  = flag.Bool("suite", false, "generate the full 54-instance Table I suite")
		outDir = flag.String("o", "", "output directory (required with -suite; default stdout otherwise)")
		tasks  = flag.Int("tasks", 10, "number of tasks")
		width  = flag.Int("width", 4, "number of input matrices (DAG width)")
		ratio  = flag.Float64("ratio", 0.5, "ratio of addition tasks")
		n      = flag.Int("n", 2000, "matrix dimension")
		seed   = flag.Int64("seed", 1, "generator seed (with -suite: suite base seed)")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of JSON (single-instance mode)")
	)
	flag.Parse()

	if *suite {
		if *outDir == "" {
			log.Fatal("-suite requires -o <dir>")
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		instances, err := dag.GenerateSuite(*seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, inst := range instances {
			path := filepath.Join(*outDir, inst.Params.Name()+".json")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := inst.Graph.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d DAGs to %s\n", len(instances), *outDir)
		return
	}

	g, err := dag.Generate(dag.GenParams{
		Tasks:         *tasks,
		InputMatrices: *width,
		AddRatio:      *ratio,
		N:             *n,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		if err := g.WriteDOT(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *outDir != "" {
		path := filepath.Join(*outDir, g.Name+".json")
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := g.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Println(path)
		return
	}
	if err := g.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
