// Command profilecluster runs the paper's measurement campaigns against the
// emulated cluster (§VI–§VII) and writes the results: the brute-force task
// profile, the startup series, the redistribution surface, and the fitted
// empirical models in Table II form.
//
// Usage:
//
//	profilecluster                  # campaign summary to stdout
//	profilecluster -json profile.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/profiler"
)

// profileDump is the JSON export layout.
type profileDump struct {
	TaskTimes []taskEntry        `json:"task_times"`
	Startup   map[string]float64 `json:"startup_seconds"`
	RedistDst map[string]float64 `json:"redist_overhead_seconds_by_dst"`
	Fits      fitsDump           `json:"empirical_fits"`
}

type taskEntry struct {
	Kernel  string  `json:"kernel"`
	N       int     `json:"n"`
	P       int     `json:"p"`
	Seconds float64 `json:"seconds"`
}

type fitsDump struct {
	StartupA  float64               `json:"startup_a"`
	StartupB  float64               `json:"startup_b"`
	RedistAms float64               `json:"redist_a_ms"`
	RedistBms float64               `json:"redist_b_ms"`
	Mul       map[string][4]float64 `json:"mul_abcd_by_n"`
	Add       map[string][2]float64 `json:"add_ab_by_n"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("profilecluster: ")
	var (
		seed     = flag.Int64("seed", 42, "environment noise seed")
		parallel = flag.Int("parallel", 0, "worker pool size for the fit-validation sweep (0 = one per CPU)")
		jsonPath = flag.String("json", "", "write the full profile as JSON to this path")
	)
	flag.Parse()

	em, err := cluster.NewEmulator(cluster.Bayreuth(), *seed)
	if err != nil {
		log.Fatal(err)
	}

	prof, err := profiler.BuildProfileModel(em, profiler.DefaultProfileOptions())
	if err != nil {
		log.Fatal(err)
	}
	emp, err := profiler.BuildEmpiricalModel(em, profiler.DefaultEmpiricalOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("brute-force task profile (mean seconds):")
	keys := make([]perfmodel.TaskKey, 0, len(prof.Data.TaskTimes))
	for k := range prof.Data.TaskTimes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.Kernel != kb.Kernel {
			return ka.Kernel < kb.Kernel
		}
		if ka.N != kb.N {
			return ka.N < kb.N
		}
		return ka.P < kb.P
	})
	for _, k := range keys {
		if k.P == 1 || k.P%8 == 0 {
			fmt.Printf("  %-4s n=%d p=%-3d %8.2f\n", k.Kernel, k.N, k.P, prof.Data.TaskTimes[k])
		}
	}
	fmt.Printf("startup overhead: p=1 %.3fs ... p=32 %.3fs\n",
		prof.Data.Startup[1], prof.Data.Startup[32])
	fmt.Printf("redistribution overhead: p(dst)=1 %.1fms ... p(dst)=32 %.1fms\n",
		1000*prof.Data.RedistByDst[1], 1000*prof.Data.RedistByDst[32])
	fmt.Println()
	fmt.Println("empirical fits (Table II form):")
	for _, n := range []int{2000, 3000} {
		pw := emp.MulFits[n]
		fmt.Printf("  mul n=%d: low (a,b)=(%.2f, %.2f)  high (c,d)=(%.2f, %.2f)\n",
			n, pw.Low.A, pw.Low.B, pw.High.A, pw.High.B)
		f := emp.AddFits[n]
		fmt.Printf("  add n=%d: (a,b)=(%.2f, %.2f)\n", n, f.A, f.B)
	}
	fmt.Printf("  startup: (a,b)=(%.3f, %.3f) s\n", emp.StartupFit.A, emp.StartupFit.B)
	fmt.Printf("  redistribution: (a,b)=(%.2f, %.2f) ms\n",
		1000*emp.RedistFit.A, 1000*emp.RedistFit.B)

	// Cross-validate the sparse fits against fresh held-out measurements
	// (draws the campaigns never saw): one (kernel, n) series per cell of
	// the study engine's worker pool, each on a deterministic private
	// noise session, so the table is identical for every pool size.
	fmt.Println()
	fmt.Println("empirical fits vs held-out measurements (relative error, p=1..32, 3 trials):")
	type valSeries struct {
		kernel dag.Kernel
		n      int
	}
	series := []valSeries{
		{dag.KernelMul, 2000}, {dag.KernelMul, 3000},
		{dag.KernelAdd, 2000}, {dag.KernelAdd, 3000},
	}
	type valRow struct{ mean, max float64 }
	rows := make([]valRow, len(series))
	maxP := em.Hidden.Cluster.Nodes
	runner := experiments.Runner{Workers: *parallel, Seed: *seed, Em: em}
	if err := runner.Run("validate", len(series), func(i int, sess *cluster.Session) error {
		s := series[i]
		c := profiler.Campaign{Em: sess}
		task := &dag.Task{Kernel: s.kernel, N: s.n}
		var sum, max float64
		for p := 1; p <= maxP; p++ {
			meas := c.MeasureTaskMean(s.kernel, s.n, p, 3)
			e := emp.TaskTime(task, p) - meas
			if e < 0 {
				e = -e
			}
			e /= meas
			sum += e
			if e > max {
				max = e
			}
		}
		rows[i] = valRow{mean: sum / float64(maxP), max: max}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	for i, s := range series {
		fmt.Printf("  %-4s n=%d: mean %5.1f%%  max %5.1f%%\n",
			s.kernel, s.n, 100*rows[i].mean, 100*rows[i].max)
	}

	if *jsonPath == "" {
		return
	}
	dump := profileDump{
		Startup:   map[string]float64{},
		RedistDst: map[string]float64{},
		Fits: fitsDump{
			StartupA:  emp.StartupFit.A,
			StartupB:  emp.StartupFit.B,
			RedistAms: 1000 * emp.RedistFit.A,
			RedistBms: 1000 * emp.RedistFit.B,
			Mul:       map[string][4]float64{},
			Add:       map[string][2]float64{},
		},
	}
	for _, k := range keys {
		dump.TaskTimes = append(dump.TaskTimes, taskEntry{
			Kernel: k.Kernel.String(), N: k.N, P: k.P, Seconds: prof.Data.TaskTimes[k],
		})
	}
	for p, v := range prof.Data.Startup {
		dump.Startup[fmt.Sprint(p)] = v
	}
	for p, v := range prof.Data.RedistByDst {
		dump.RedistDst[fmt.Sprint(p)] = v
	}
	for _, n := range []int{2000, 3000} {
		pw := emp.MulFits[n]
		dump.Fits.Mul[fmt.Sprint(n)] = [4]float64{pw.Low.A, pw.Low.B, pw.High.A, pw.High.B}
		f := emp.AddFits[n]
		dump.Fits.Add[fmt.Sprint(n)] = [2]float64{f.A, f.B}
	}
	f, err := os.Create(*jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *jsonPath)
}
