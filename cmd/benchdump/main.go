// Command benchdump runs the repository's performance-critical benchmarks
// and records their results in a machine-readable JSON file — the perf
// trajectory the BENCH_*.json files at the repository root accumulate PR
// over PR.
//
// It shells out to the go tool:
//
//	go test -run=^$ -bench=<regex> -benchmem -benchtime=<d> -count=1 .
//
// parses the benchmark result lines (including custom metrics such as
// "wrong/27@n=2000"), and writes or merges them into the output file. With
// -merge (the default), existing entries for other benchmarks are kept, so
// cheap and expensive benchmarks can be recorded by separate invocations:
//
//	go run ./cmd/benchdump -out BENCH_PR7.json -bench 'BenchmarkMaxMinSolver$|BenchmarkVirtualReplay$'
//	go run ./cmd/benchdump -out BENCH_PR7.json -benchtime 1x -bench 'BenchmarkStudySerialVsParallel|BenchmarkServiceScheduleThroughput|BenchmarkRobustnessTrials$'
//
// BenchmarkRobustnessTrials runs as four sub-benchmarks (resched/replay ×
// full-budget/sequential); each reports trialruns/s and allocs/trial custom
// metrics, which land in the entry's "metrics" map.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// defaultBench is the key-benchmark set: the steady-state solver, the
// virtual replay, the study engine, the service schedule path, the Monte
// Carlo robustness trials and the telemetry overhead probe.
const defaultBench = "BenchmarkMaxMinSolver$|BenchmarkVirtualReplay$|BenchmarkStudySerialVsParallel|BenchmarkServiceScheduleThroughput|BenchmarkRobustnessTrials$|BenchmarkMetricsOverhead$"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HasMem reports whether -benchmem columns were present, so a true zero
	// allocs/op is distinguishable from "not measured".
	HasMem bool `json:"has_mem"`
	// Benchtime records the -benchtime this entry was measured under.
	// Merged files mix full-length and smoke (1x) entries, so the setting
	// is per result, not per file.
	Benchtime string `json:"benchtime"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the serialized trajectory entry.
type File struct {
	Label      string   `json:"label,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchmarks []Result `json:"benchmarks"`
}

// resultRe matches one "go test -bench" result line: name, iterations, then
// "value unit" metric pairs ("123 ns/op", "0 B/op", "4 allocs/op", custom
// ReportMetric units).
var resultRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdump: ")
	var (
		out       = flag.String("out", "BENCH_PR7.json", "output JSON file")
		bench     = flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime (e.g. 1s, 100x, 1x for a smoke run)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		label     = flag.String("label", "", "trajectory label recorded in the file (e.g. PR4)")
		merge     = flag.Bool("merge", true, "merge results into an existing output file instead of replacing it")
	)
	flag.Parse()

	args := []string{"test", "-run=^$", "-bench=" + *bench, "-benchmem", "-benchtime=" + *benchtime, "-count=1", *pkg}
	fmt.Fprintf(os.Stderr, "benchdump: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatalf("go test failed: %v", err)
	}

	results := parse(stdout.String())
	if len(results) == 0 {
		log.Fatalf("no benchmark results matched %q", *bench)
	}
	for i := range results {
		results[i].Benchtime = *benchtime
	}

	file := File{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	if *merge {
		if prev, err := load(*out); err == nil {
			if file.Label == "" {
				file.Label = prev.Label
			}
			seen := map[string]bool{}
			for _, r := range results {
				seen[r.Name] = true
			}
			for _, r := range prev.Benchmarks {
				if !seen[r.Name] {
					results = append(results, r)
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	file.Benchmarks = results

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchdump: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}

// load reads a previously written trajectory file.
func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	err = json.Unmarshal(data, &f)
	return f, err
}

// parse extracts benchmark results from go test output.
func parse(output string) []Result {
	var results []Result
	for _, line := range strings.Split(output, "\n") {
		m := resultRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: strings.TrimPrefix(m[1], "Benchmark"), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = value
			case "B/op":
				r.BytesPerOp = value
				r.HasMem = true
			case "allocs/op":
				r.AllocsPerOp = value
				r.HasMem = true
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = value
			}
		}
		results = append(results, r)
	}
	return results
}
