// Command reprosrv serves the reproduction as a long-running HTTP daemon:
// scheduling and simulation requests are answered synchronously over
// registry-cached performance models (fitted once per environment and seed,
// reused across all requests — the paper's §VI/§VII measurement economics),
// whole studies (fig1…table2, ablation, …) run asynchronously on a bounded
// job queue, and declarative what-if campaigns (POST /v1/campaigns) sweep
// hypothetical platforms, workloads, algorithms and models over the same
// fit-once registry.
//
// Usage:
//
//	reprosrv -addr :8080 -log-format json -pprof
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//	curl -X POST localhost:8080/v1/schedule -d @request.json
//	curl -X POST localhost:8080/v1/campaigns -d @campaign.json
//
// With -store-dir the daemon becomes a replica of a durable cluster: jobs
// live in a WAL'd pool on disk (claimed by lease, reclaimed from crashed
// replicas), fitted models persist across restarts, and any number of
// replicas can share one store directory. Campaign and robustness jobs are
// sharded at cell granularity across every replica on the store (disable
// with -no-shard); the merged report is byte-identical either way. See
// docs/CLUSTER.md.
//
//	reprosrv -addr :8080 -store-dir /var/lib/repro -replica-id r1 -lease-ttl 10s
//
// Observability: GET /metrics serves the Prometheus exposition, every
// request is logged as a structured line (-log-format json|text), and
// -metrics-addr can serve /metrics and /debug/pprof/ on a separate private
// listener. See docs/SERVICE.md for the API reference and a walkthrough,
// docs/OBSERVABILITY.md for the metric catalogue, and docs/CAMPAIGNS.md for
// the campaign spec schema.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"log/slog"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// flagSet reports whether a flag was explicitly set on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("reprosrv: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Int64("seed", 42, "default measurement-campaign noise seed")
		suiteSeed   = flag.Int64("suite-seed", 2011, "default seed for the 54-DAG study suite")
		parallel    = flag.Int("parallel", 0, "per-study cell-engine worker pool size (0 = one per CPU)")
		jobWorkers  = flag.Int("job-workers", 2, "concurrent study jobs")
		queueCap    = flag.Int("queue", 16, "pending-job queue capacity")
		retain      = flag.Int("retain", 64, "finished jobs whose results are retained")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget")
		logFormat   = flag.String("log-format", "text", "request log format: text or json")
		metricsAddr = flag.String("metrics-addr", "", "optional separate listener for /metrics and /debug/pprof/ (e.g. a private port)")
		enablePprof = flag.Bool("pprof", false, "mount /debug/pprof/ on the API handler")
		storeDir    = flag.String("store-dir", "", "durable store directory: jobs and fitted models persist here and are shared with every replica on the same directory")
		replicaID   = flag.String("replica-id", "", "this replica's lease-holder identity (default hostname-pid; requires -store-dir)")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "job lease duration; a replica silent this long loses its jobs to the reclaimer (requires -store-dir)")
		noShard     = flag.Bool("no-shard", false, "run campaign/robustness jobs as monoliths instead of sharding their cells across replicas (requires -store-dir)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		log.Fatalf("unknown -log-format %q (want text or json)", *logFormat)
	}

	opts := service.DefaultOptions()
	opts.Seed = *seed
	opts.SuiteSeed = *suiteSeed
	opts.Parallelism = *parallel
	opts.JobWorkers = *jobWorkers
	opts.QueueCap = *queueCap
	opts.Retain = *retain
	opts.Logger = slog.New(handler)
	opts.EnablePprof = *enablePprof
	if *storeDir == "" && (*replicaID != "" || flagSet("lease-ttl") || *noShard) {
		log.Fatal("-replica-id, -lease-ttl and -no-shard require -store-dir")
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		opts.Store = st
		opts.ReplicaID = *replicaID
		opts.LeaseTTL = *leaseTTL
		opts.NoShard = *noShard
	}
	svc := service.New(opts)
	if *storeDir != "" {
		log.Printf("replica %s on store %s (lease ttl %s)", svc.Jobs().Replica(), *storeDir, *leaseTTL)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	if *metricsAddr != "" {
		// The private listener always exposes pprof: it is the operator's
		// port, not the API surface -pprof gates.
		mmux := http.NewServeMux()
		mmux.Handle("GET /metrics", obs.Default.Handler())
		mmux.HandleFunc("/debug/pprof/", pprof.Index)
		mmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv := &http.Server{Addr: *metricsAddr, Handler: mmux}
		go func() {
			log.Printf("metrics listening on %s", *metricsAddr)
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("metrics listener: %v", err)
			}
		}()
		defer msrv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("job shutdown: %v", err)
	}
	log.Printf("bye")
}
