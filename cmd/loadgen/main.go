// Command loadgen drives a reprosrv daemon (or a multi-replica cluster)
// with concurrent load and reports throughput. Two modes:
//
//   - schedule: workers hammer the synchronous POST /v1/schedule path with
//     generated DAGs for a fixed duration, round-robin across -addrs, and
//     report requests/s. This exercises the registry cache and the pooled
//     scheduling scratch under concurrency.
//   - jobs: submit -jobs async study jobs round-robin across -addrs, poll
//     every job to a terminal state, and report jobs/s plus which replica
//     ran each job — on a shared -store-dir cluster the lease pool spreads
//     them across replicas.
//   - robust: submit ONE sharded robustness job (-cells grid cells of
//     -trials Monte Carlo trials each) and report its wall-clock and cells/s
//     plus how many cells each replica executed (scraped from every addr's
//     /metrics) — the scaling probe for cell-sharded clusters: the same job
//     against 1, 2, 4 replicas sharing a store directory measures the
//     speedup of cooperative execution directly.
//
// Usage:
//
//	loadgen -mode schedule -addrs http://127.0.0.1:8080 -c 8 -duration 10s
//	loadgen -mode jobs -addrs http://127.0.0.1:8080,http://127.0.0.1:8081 -jobs 16 -study table1
//	loadgen -mode robust -addrs http://127.0.0.1:8080,http://127.0.0.1:8081 -cells 8 -trials 48
//
// With -json the summary is machine-readable, for benchmark harnesses.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/robust"
	"repro/internal/service"
)

type summary struct {
	Mode          string         `json:"mode"`
	Addrs         int            `json:"addrs"`
	Concurrency   int            `json:"concurrency"`
	Requests      int64          `json:"requests"`
	Errors        int64          `json:"errors"`
	Seconds       float64        `json:"seconds"`
	RequestsPerS  float64        `json:"requests_per_sec"`
	JobsDone      int64          `json:"jobs_done,omitempty"`
	JobsFailed    int64          `json:"jobs_failed,omitempty"`
	JobsPerS      float64        `json:"jobs_per_sec,omitempty"`
	JobsByReplica map[string]int `json:"jobs_by_replica,omitempty"`
	Cells         int64          `json:"cells,omitempty"`
	CellsPerS     float64        `json:"cells_per_sec,omitempty"`
	CellsByAddr   map[string]int `json:"cells_by_addr,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addrs    = flag.String("addrs", "http://127.0.0.1:8080", "comma-separated daemon base URLs (round-robin)")
		mode     = flag.String("mode", "schedule", "load shape: schedule (sync requests/s) or jobs (async submit+poll)")
		conc     = flag.Int("c", 8, "concurrent workers (schedule mode)")
		duration = flag.Duration("duration", 10*time.Second, "run length (schedule mode)")
		jobs     = flag.Int("jobs", 8, "study jobs to submit (jobs mode)")
		study    = flag.String("study", "table1", "study each job runs (jobs mode)")
		cells    = flag.Int("cells", 8, "grid cells of the sharded job (robust mode)")
		trials   = flag.Int("trials", 48, "Monte Carlo trials per cell (robust mode)")
		model    = flag.String("model", "analytic", "performance model (schedule mode)")
		poll     = flag.Duration("poll", 100*time.Millisecond, "job poll interval (jobs mode)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall deadline")
		asJSON   = flag.Bool("json", false, "emit the summary as JSON")
	)
	flag.Parse()

	var clients []*service.Client
	for _, a := range strings.Split(*addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			clients = append(clients, service.NewClient(a))
		}
	}
	if len(clients) == 0 {
		log.Fatal("no -addrs")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	for i, c := range clients {
		if err := c.Health(ctx); err != nil {
			log.Fatalf("addr %d: %v", i, err)
		}
	}

	var sum summary
	var err error
	switch *mode {
	case "schedule":
		sum, err = runSchedule(ctx, clients, *conc, *duration, *model)
	case "jobs":
		sum, err = runJobs(ctx, clients, *jobs, *study, *poll)
	case "robust":
		sum, err = runRobust(ctx, clients, addrList(*addrs), *cells, *trials, *poll)
	default:
		log.Fatalf("unknown -mode %q (want schedule, jobs or robust)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	sum.Addrs = len(clients)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("mode=%s addrs=%d workers=%d requests=%d errors=%d elapsed=%.2fs rate=%.1f req/s\n",
		sum.Mode, sum.Addrs, sum.Concurrency, sum.Requests, sum.Errors, sum.Seconds, sum.RequestsPerS)
	if sum.Mode == "jobs" {
		fmt.Printf("jobs done=%d failed=%d rate=%.2f jobs/s\n", sum.JobsDone, sum.JobsFailed, sum.JobsPerS)
		replicas := make([]string, 0, len(sum.JobsByReplica))
		for r := range sum.JobsByReplica {
			replicas = append(replicas, r)
		}
		sort.Strings(replicas)
		for _, r := range replicas {
			fmt.Printf("  replica %s: %d jobs\n", r, sum.JobsByReplica[r])
		}
	}
	if sum.Mode == "robust" {
		fmt.Printf("sharded job: %d cells in %.2fs = %.2f cells/s across %d replicas\n",
			sum.Cells, sum.Seconds, sum.CellsPerS, sum.Addrs)
		addrs := make([]string, 0, len(sum.CellsByAddr))
		for a := range sum.CellsByAddr {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, a := range addrs {
			fmt.Printf("  %s: %d cells\n", a, sum.CellsByAddr[a])
		}
	}
}

// addrList splits the -addrs flag into trimmed non-empty base URLs.
func addrList(addrs string) []string {
	var out []string
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runSchedule hammers POST /v1/schedule until the duration elapses: each
// worker owns one generated DAG (distinct seeds, so the scheduling work
// varies) and loops against the round-robin address list.
func runSchedule(ctx context.Context, clients []*service.Client, workers int, d time.Duration, model string) (summary, error) {
	if workers < 1 {
		workers = 1
	}
	graphs := make([]*dag.Graph, workers)
	for i := range graphs {
		g, err := dag.Generate(dag.GenParams{
			Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: int64(1000 + i),
		})
		if err != nil {
			return summary{}, err
		}
		graphs[i] = g
	}

	runCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	var requests, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := service.ScheduleRequest{DAG: graphs[i], Model: model}
			for n := i; runCtx.Err() == nil; n++ {
				_, err := clients[n%len(clients)].Schedule(runCtx, req)
				if runCtx.Err() != nil {
					return // deadline, not a server error
				}
				requests.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return summary{
		Mode: "schedule", Concurrency: workers,
		Requests: requests.Load(), Errors: errs.Load(),
		Seconds: elapsed, RequestsPerS: float64(requests.Load()) / elapsed,
	}, nil
}

// robustSpec builds the deterministic scaling workload: cells grid cells
// (one per platform scale) of trials Monte Carlo trials each. Every seed is
// explicit, so the report is byte-identical no matter how many replicas
// cooperate — which is what makes the wall-clock comparison meaningful.
func robustSpec(cells, trials int) robust.Spec {
	nodes := make([]int, cells)
	for i := range nodes {
		nodes[i] = 4 + 2*i
	}
	return robust.Spec{
		Spec: campaign.Spec{
			Name:       "loadgen-scaling",
			Seed:       42,
			Platforms:  campaign.PlatformAxis{Nodes: nodes},
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}, SuiteSeeds: []int64{2011}},
			Algorithms: []string{"HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{Trials: trials, Levels: []float64{0.05, 0.2, 0.5}},
	}
}

// cellsDoneCounter scrapes repro_jobs_cells_done_total from one replica's
// /metrics exposition (0 when absent or unreachable — a replica that never
// ran a cell may not have registered the counter yet).
func cellsDoneCounter(ctx context.Context, addr string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return 0
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "repro_jobs_cells_done_total ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, "repro_jobs_cells_done_total "), 64)
		if err != nil {
			return 0
		}
		return int(v)
	}
	return 0
}

// runRobust submits one sharded robustness job and reports its wall-clock,
// cells/s, and the per-replica cell split — the direct scaling measurement:
// rerun with more -addrs replicas on the same store directory and compare.
func runRobust(ctx context.Context, clients []*service.Client, addrs []string, cells, trials int, poll time.Duration) (summary, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	before := make(map[string]int, len(addrs))
	for _, a := range addrs {
		before[a] = cellsDoneCounter(ctx, a)
	}

	start := time.Now()
	status, err := clients[0].SubmitRobustness(ctx, robustSpec(cells, trials))
	if err != nil {
		return summary{}, err
	}
	status, err = clients[0].WaitRobustness(ctx, status.ID, poll)
	if err != nil {
		return summary{}, err
	}
	elapsed := time.Since(start).Seconds()
	if status.State != service.JobDone {
		return summary{}, fmt.Errorf("job %s ended %s: %s", status.ID, status.State, status.Error)
	}

	byAddr := make(map[string]int, len(addrs))
	total := 0
	for _, a := range addrs {
		if n := cellsDoneCounter(ctx, a) - before[a]; n > 0 {
			byAddr[a] = n
			total += n
		}
	}
	if total == 0 {
		// A monolithic (un-sharded) daemon ran the whole job as one unit;
		// count the grid so rates stay comparable.
		total = cells
	}
	return summary{
		Mode: "robust", Concurrency: 1, Requests: 2,
		Seconds: elapsed, RequestsPerS: 2 / elapsed,
		Cells: int64(total), CellsPerS: float64(total) / elapsed,
		CellsByAddr: byAddr,
	}, nil
}

// runJobs submits study jobs round-robin and polls each to a terminal
// state. Every submit and every poll counts as a request; each job is
// polled through the client it was submitted on (any replica of a durable
// cluster can answer for any job, but a plain in-memory daemon only knows
// its own jobs, and sticking to the submitter works for both).
func runJobs(ctx context.Context, clients []*service.Client, jobs int, study string, poll time.Duration) (summary, error) {
	if jobs < 1 {
		jobs = 1
	}
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	var requests, errs, done, failed atomic.Int64
	byReplica := make(map[string]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clients[i%len(clients)]
			requests.Add(1)
			status, err := c.SubmitStudy(ctx, service.StudyRequest{Study: study})
			if err != nil {
				errs.Add(1)
				failed.Add(1)
				return
			}
			for status.State == service.JobQueued || status.State == service.JobRunning {
				select {
				case <-ctx.Done():
					failed.Add(1)
					return
				case <-time.After(poll):
				}
				requests.Add(1)
				status, err = c.Job(ctx, status.ID)
				if err != nil {
					errs.Add(1)
					failed.Add(1)
					return
				}
			}
			if status.State == service.JobDone {
				done.Add(1)
				mu.Lock()
				byReplica[status.Replica]++
				mu.Unlock()
			} else {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return summary{
		Mode: "jobs", Concurrency: jobs,
		Requests: requests.Load(), Errors: errs.Load(),
		Seconds: elapsed, RequestsPerS: float64(requests.Load()) / elapsed,
		JobsDone: done.Load(), JobsFailed: failed.Load(),
		JobsPerS:      float64(done.Load()) / elapsed,
		JobsByReplica: byReplica,
	}, nil
}
