// Command mixedsim reproduces the paper's evaluation: it assembles the
// emulated Bayreuth environment, runs the profiling campaigns, pushes the
// 54-DAG suite through the three simulators and the emulated cluster, and
// prints any (or all) of the paper's tables and figures.
//
// Usage:
//
//	mixedsim -experiment all
//	mixedsim -experiment fig1            # analytic sim vs experiment
//	mixedsim -experiment fig8 -seed 7    # error boxplots, different noise
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// table2, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mixedsim: ")
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table1, fig1..fig8, table2, ablation, scaling, all)")
		suiteSeed  = flag.Int64("suite-seed", 2011, "seed for the 54-DAG suite")
		noiseSeed  = flag.Int64("seed", 42, "seed for the environment's run-to-run noise")
		trials     = flag.Int("trials", 1, "emulated cluster runs averaged per measured makespan")
		parallel   = flag.Int("parallel", 0, "study-execution worker pool size (0 = one per CPU); output is identical for every value")
		jsonPath   = flag.String("json", "", "additionally write the full machine-readable report to this path")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.SuiteSeed = *suiteSeed
	cfg.NoiseSeed = *noiseSeed
	cfg.ExpTrials = *trials
	cfg.Parallelism = *parallel

	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	labFn := func() (*experiments.Lab, error) { return lab, nil }
	run := func(name string) error {
		return experiments.RenderStudy(context.Background(), name, cfg, labFn, w)
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.StudyNames()
	}
	for i, name := range names {
		if i > 0 {
			separator(w)
		}
		if err := run(name); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath != "" {
		report, err := lab.BuildReport()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "wrote", *jsonPath)
	}
}

func separator(w io.Writer) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintln(w)
}
