// Command mixedsim reproduces the paper's evaluation: it assembles the
// emulated Bayreuth environment, runs the profiling campaigns, pushes the
// 54-DAG suite through the three simulators and the emulated cluster, and
// prints any (or all) of the paper's tables and figures.
//
// Usage:
//
//	mixedsim -experiment all
//	mixedsim -experiment fig1            # analytic sim vs experiment
//	mixedsim -experiment fig8 -seed 7    # error boxplots, different noise
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// table2, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mixedsim: ")
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table1, fig1..fig8, table2, ablation, scaling, all)")
		suiteSeed  = flag.Int64("suite-seed", 2011, "seed for the 54-DAG suite")
		noiseSeed  = flag.Int64("seed", 42, "seed for the environment's run-to-run noise")
		trials     = flag.Int("trials", 1, "emulated cluster runs averaged per measured makespan")
		parallel   = flag.Int("parallel", 0, "study-execution worker pool size (0 = one per CPU); output is identical for every value")
		jsonPath   = flag.String("json", "", "additionally write the full machine-readable report to this path")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.SuiteSeed = *suiteSeed
	cfg.NoiseSeed = *noiseSeed
	cfg.ExpTrials = *trials
	cfg.Parallelism = *parallel

	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	run := func(name string) error {
		switch name {
		case "table1":
			lab.Table1().Write(w)
		case "fig1", "fig5", "fig7":
			model := map[string]string{"fig1": "analytic", "fig5": "profile", "fig7": "empirical"}[name]
			for _, n := range []int{2000, 3000} {
				c, err := lab.CompareHCPAMCPA(model, n)
				if err != nil {
					return err
				}
				c.Write(w)
				fmt.Fprintln(w)
			}
		case "fig2":
			experiments.WriteErrorSeries(w,
				"Figure 2 (left) — relative error of the analytic model, 1D MM/Java",
				lab.Figure2Java(3))
			fmt.Fprintln(w)
			experiments.WriteErrorSeries(w,
				"Figure 2 (right) — relative error of the analytic model, PDGEMM/Cray XT4",
				experiments.Figure2Franklin())
		case "fig3":
			lab.Figure3().Write(w)
		case "fig4":
			lab.Figure4().Write(w)
		case "fig6":
			for _, n := range []int{2000, 3000} {
				study, err := lab.Figure6(n)
				if err != nil {
					return err
				}
				study.Write(w)
				fmt.Fprintln(w)
			}
		case "fig8":
			boxes, err := lab.Figure8()
			if err != nil {
				return err
			}
			experiments.WriteFigure8(w, boxes)
		case "table2":
			lab.Table2(w)
		case "ablation":
			rows, err := lab.Ablation()
			if err != nil {
				return err
			}
			experiments.WriteAblation(w, rows)
		case "scaling":
			rows, err := experiments.ScalingStudy(cfg, []int{32, 64, 128})
			if err != nil {
				return err
			}
			experiments.WriteScaling(w, rows)
		case "sensitivity":
			rows, err := experiments.NoiseSensitivity(cfg, []float64{0, 0.01, 0.03, 0.1, 0.2})
			if err != nil {
				return err
			}
			experiments.WriteSensitivity(w, rows)
		case "straggler":
			rows, err := experiments.StragglerStudy(cfg)
			if err != nil {
				return err
			}
			experiments.WriteStraggler(w, rows)
		case "hetero":
			rows, err := experiments.HeterogeneityStudy(cfg)
			if err != nil {
				return err
			}
			experiments.WriteHetero(w, rows)
		case "environments":
			rows, err := experiments.EnvironmentStudy(cfg)
			if err != nil {
				return err
			}
			experiments.WriteEnvironments(w, rows)
		case "breakdown":
			rows, err := lab.TimeBreakdown()
			if err != nil {
				return err
			}
			experiments.WriteBreakdown(w, rows)
		case "shapes":
			rows, err := lab.ShapeStudy()
			if err != nil {
				return err
			}
			experiments.WriteShapes(w, rows)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
			"fig8", "table2", "ablation", "scaling", "sensitivity", "breakdown", "shapes",
			"environments", "hetero", "straggler"}
	}
	for i, name := range names {
		if i > 0 {
			separator(w)
		}
		if err := run(name); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath != "" {
		report, err := lab.BuildReport()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "wrote", *jsonPath)
	}
}

func separator(w io.Writer) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintln(w)
}
