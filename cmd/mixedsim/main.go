// Command mixedsim reproduces the paper's evaluation: it assembles the
// emulated Bayreuth environment, runs the profiling campaigns, pushes the
// 54-DAG suite through the three simulators and the emulated cluster, and
// prints any (or all) of the paper's tables and figures. With -campaign it
// instead executes a declarative what-if sweep (docs/CAMPAIGNS.md) over
// hypothetical platforms, workloads, algorithms and models; with -robust it
// executes a Monte Carlo winner-stability study (docs/ROBUSTNESS.md) on top
// of such a sweep; with -arrival it executes an online-arrival scenario
// (docs/WORKLOADS.md): jobs arriving over time on a shared cluster,
// scheduled online against the fitted models.
//
// Usage:
//
//	mixedsim -experiment all
//	mixedsim -experiment fig1            # analytic sim vs experiment
//	mixedsim -experiment fig8 -seed 7    # error boxplots, different noise
//	mixedsim -campaign spec.json         # declarative §IX what-if sweep
//	mixedsim -robust spec.json           # §V winner-stability stress test
//	mixedsim -arrival spec.json          # online arrivals on a shared cluster
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// table2, all.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/arrival"
	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mixedsim: ")
	var (
		experiment   = flag.String("experiment", "all", "which experiment to run (table1, fig1..fig8, table2, ablation, scaling, all)")
		campaignPath = flag.String("campaign", "", "run the campaign spec (JSON) at this path instead of an experiment")
		robustPath   = flag.String("robust", "", "run the robustness spec (JSON, docs/ROBUSTNESS.md) at this path instead of an experiment")
		arrivalPath  = flag.String("arrival", "", "run the online-arrival spec (JSON, docs/WORKLOADS.md) at this path instead of an experiment")
		suiteSeed    = flag.Int64("suite-seed", 2011, "seed for the 54-DAG suite")
		noiseSeed    = flag.Int64("seed", 42, "seed for the environment's run-to-run noise")
		trials       = flag.Int("trials", 1, "emulated cluster runs averaged per measured makespan")
		parallel     = flag.Int("parallel", 0, "study-execution worker pool size (0 = one per CPU); output is identical for every value")
		jsonPath     = flag.String("json", "", "additionally write the full machine-readable report to this path")
		progress     = flag.Bool("progress", false, "print a live progress ticker to stderr (-campaign and -robust modes)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.SuiteSeed = *suiteSeed
	cfg.NoiseSeed = *noiseSeed
	cfg.ExpTrials = *trials
	cfg.Parallelism = *parallel

	specs := 0
	mode := ""
	for flagName, path := range map[string]*string{
		"-campaign": campaignPath, "-robust": robustPath, "-arrival": arrivalPath,
	} {
		if *path != "" {
			specs++
			mode = flagName
		}
	}
	if specs > 1 {
		log.Fatal("-campaign, -robust and -arrival are mutually exclusive; pass one spec")
	}
	if specs == 1 {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "experiment" || f.Name == "json" {
				log.Fatalf("-%s is not supported in %s mode", f.Name, mode)
			}
		})
		var prog *obs.Progress
		if *progress {
			prog = &obs.Progress{}
			stop := startTicker(prog)
			defer stop()
		}
		var err error
		switch mode {
		case "-campaign":
			err = runCampaign(*campaignPath, cfg, prog, os.Stdout)
		case "-robust":
			err = runRobust(*robustPath, cfg, prog, os.Stdout)
		case "-arrival":
			err = runArrival(*arrivalPath, cfg, prog, os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	if *progress {
		log.Fatal("-progress is only supported in -campaign, -robust and -arrival modes")
	}

	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	labFn := func() (*experiments.Lab, error) { return lab, nil }
	run := func(name string) error {
		return experiments.RenderStudy(context.Background(), name, cfg, labFn, w)
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.StudyNames()
	}
	for i, name := range names {
		if i > 0 {
			separator(w)
		}
		if err := run(name); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonPath != "" {
		report, err := lab.BuildReport()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, "wrote", *jsonPath)
	}
}

// startTicker prints the progress record to stderr twice a second (and once
// more on stop), so long sweeps show cells and trials advancing without
// touching the report on stdout. The returned stop must be called before the
// process exits.
func startTicker(prog *obs.Progress) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	line := func() {
		s := prog.Snapshot()
		fmt.Fprintf(os.Stderr, "\rprogress: cells %d/%d", s.CellsDone, s.CellsTotal)
		if s.TrialBudget > 0 {
			fmt.Fprintf(os.Stderr, "  trials %d/%d", s.TrialsUsed, s.TrialBudget)
		}
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				line()
				fmt.Fprintln(os.Stderr)
				return
			case <-tick.C:
				line()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// runCampaign loads a declarative what-if spec and sweeps it against a
// fresh fit-once registry; the CLI flags supply the spec's seed defaults.
func runCampaign(path string, cfg experiments.Config, prog *obs.Progress, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec campaign.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("campaign spec %s: %w", path, err)
	}
	if spec.Seed == 0 {
		spec.Seed = cfg.NoiseSeed
	}
	if spec.Workloads.IsEmpty() {
		spec.Workloads.SuiteSeeds = []int64{cfg.SuiteSeed}
	}
	if spec.Trials == 0 && cfg.ExpTrials > 1 {
		spec.Trials = cfg.ExpTrials
	}
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := campaign.Engine{Source: reg, Workers: cfg.Parallelism, Progress: prog}
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	res.Write(w)
	return nil
}

// runRobust loads a robustness spec (a campaign spec plus a "robustness"
// axis) and executes the Monte Carlo winner-stability study against a fresh
// fit-once registry; the CLI flags supply the spec's seed defaults.
func runRobust(path string, cfg experiments.Config, prog *obs.Progress, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec robust.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("robustness spec %s: %w", path, err)
	}
	if spec.Seed == 0 {
		spec.Seed = cfg.NoiseSeed
	}
	if spec.Workloads.IsEmpty() {
		spec.Workloads.SuiteSeeds = []int64{cfg.SuiteSeed}
	}
	if spec.Trials == 0 && cfg.ExpTrials > 1 {
		spec.Trials = cfg.ExpTrials
	}
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := robust.Engine{Source: reg, Workers: cfg.Parallelism, Progress: prog}
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	res.Write(w)
	return nil
}

// runArrival loads an online-arrival spec and executes the scenario against
// a fresh fit-once registry; the CLI flags supply the spec's seed defaults.
func runArrival(path string, cfg experiments.Config, prog *obs.Progress, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec arrival.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("arrival spec %s: %w", path, err)
	}
	if spec.Seed == 0 {
		spec.Seed = cfg.NoiseSeed
	}
	if spec.Workloads.IsEmpty() {
		spec.Workloads.SuiteSeeds = []int64{cfg.SuiteSeed}
	}
	if spec.Trials == 0 && cfg.ExpTrials > 1 {
		spec.Trials = cfg.ExpTrials
	}
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	eng := arrival.Engine{Source: reg, Workers: cfg.Parallelism, Progress: prog}
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	res.Write(w)
	return nil
}

func separator(w io.Writer) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintln(w)
}
