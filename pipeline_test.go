package repro

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tgrid"
	"repro/internal/trace"
)

// These integration tests exercise the full pipeline through the public
// facade: generate → schedule → simulate → execute → trace.

func TestFacadePipeline(t *testing.T) {
	g, err := GenerateDAG(GenParams{Tasks: 10, InputMatrices: 4, AddRatio: 0.5, N: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c := Bayreuth()
	model := NewAnalyticModel(c)
	for _, algo := range Algorithms() {
		s, err := BuildSchedule(algo, g, c, model)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		sim, err := Simulate(c, s, model)
		if err != nil {
			t.Fatalf("%s simulate: %v", algo.Name(), err)
		}
		exp, err := Experiment(s, 3)
		if err != nil {
			t.Fatalf("%s execute: %v", algo.Name(), err)
		}
		if sim.Makespan <= 0 || exp.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespans %g/%g", algo.Name(), sim.Makespan, exp.Makespan)
		}
		if exp.Makespan <= sim.Makespan {
			t.Errorf("%s: experiment (%g) not slower than analytic simulation (%g)",
				algo.Name(), exp.Makespan, sim.Makespan)
		}
	}
}

func TestFacadeSuite(t *testing.T) {
	suite, err := GenerateSuite(2011)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 54 {
		t.Fatalf("suite has %d instances", len(suite))
	}
}

// TestFacadeHeteroPipeline exercises the heterogeneous entry points.
func TestFacadeHeteroPipeline(t *testing.T) {
	powers := make([]float64, 8)
	for i := range powers {
		powers[i] = 250e6
		if i >= 4 {
			powers[i] = 500e6
		}
	}
	c := NewHeterogeneousCluster("mix", powers, 125e6, 100e-6)
	if c.IsHomogeneous() {
		t.Fatal("cluster should be heterogeneous")
	}
	g := dag.Diamond(2000)
	model := NewAnalyticModel(c)
	s, err := BuildHeteroSchedule(sched.HCPA{}, g, c, model)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(c, s, model)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Makespan <= 0 {
		t.Error("non-positive hetero makespan")
	}
}

// TestLabsDeterministic: two labs with the same configuration produce
// identical suite results.
func TestLabsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.RunSuite("empirical")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunSuite("empirical")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		for _, algo := range []string{"HCPA", "MCPA"} {
			if ra[i].Sim[algo] != rb[i].Sim[algo] || ra[i].Exp[algo] != rb[i].Exp[algo] {
				t.Fatalf("labs diverge at instance %d/%s", i, algo)
			}
		}
	}
}

// TestEmpiricalModelSchedulable: the empirical model's clamped cost curves
// must not break the schedulers.
func TestEmpiricalModelSchedulable(t *testing.T) {
	c := Bayreuth()
	model := perfmodel.PaperEmpirical()
	for seed := int64(0); seed < 5; seed++ {
		g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 1.0, N: 3000, Seed: seed})
		for _, algo := range []sched.Algorithm{sched.CPA{}, sched.HCPA{}, sched.MCPA{}} {
			s, err := BuildSchedule(algo, g, c, model)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, algo.Name(), err)
			}
			if _, err := Simulate(c, s, model); err != nil {
				t.Fatalf("seed %d %s simulate: %v", seed, algo.Name(), err)
			}
		}
	}
}

// TestSimulationReplayConsistency: the virtual replay of a schedule under
// the same model that scheduled it must finish close to the mapping phase's
// estimate (differences come only from network contention the list
// scheduler's comm estimate ignores).
func TestSimulationReplayConsistency(t *testing.T) {
	c := Bayreuth()
	model := NewAnalyticModel(c)
	for seed := int64(0); seed < 8; seed++ {
		g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.75, N: 3000, Seed: seed})
		s, err := BuildSchedule(sched.MCPA{}, g, c, model)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(c, s, model)
		if err != nil {
			t.Fatal(err)
		}
		est := s.EstMakespan()
		if sim.Makespan < est*0.5 || sim.Makespan > est*2.0 {
			t.Errorf("seed %d: simulated %g far from mapping estimate %g", seed, sim.Makespan, est)
		}
	}
}

// TestRefinedModelsTrackExperiment: simulating with the profile model must
// land within a few percent of the emulated execution for every suite DAG
// of one size — the §VI-D claim.
func TestRefinedModelsTrackExperiment(t *testing.T) {
	cfg := DefaultConfig()
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := lab.RunSuite("profile")
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, rec := range recs {
		for _, algo := range []string{"HCPA", "MCPA"} {
			e := stats.SimErrPct(rec.Sim[algo], rec.Exp[algo])
			if e > worst {
				worst = e
			}
		}
	}
	if worst > 10 {
		t.Errorf("profile-model worst simulation error %g%%, want < 10%% (paper: under 10%% on average)", worst)
	}
}

// TestScheduleDeterminism: the same inputs always produce the same
// schedule.
func TestScheduleDeterminism(t *testing.T) {
	c := Bayreuth()
	model := NewAnalyticModel(c)
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 77})
	a, err := BuildSchedule(sched.HCPA{}, g, c, model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(sched.HCPA{}, g, c, model)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Alloc {
		if a.Alloc[i] != b.Alloc[i] {
			t.Fatalf("allocation differs at task %d", i)
		}
		for j := range a.Hosts[i] {
			if a.Hosts[i][j] != b.Hosts[i][j] {
				t.Fatalf("hosts differ at task %d", i)
			}
		}
	}
}

// TestTraceAccountsForMakespan: the trace of an emulated run covers the
// whole makespan and no span exceeds it.
func TestTraceAccountsForMakespan(t *testing.T) {
	c := Bayreuth()
	model := NewAnalyticModel(c)
	g := dag.Diamond(2000)
	s, err := BuildSchedule(sched.HCPA{}, g, c, model)
	if err != nil {
		t.Fatal(err)
	}
	em, err := cluster.NewEmulator(cluster.Bayreuth(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.FromResult(s, res)
	if math.Abs(tr.Makespan-res.Makespan) > 1e-9 {
		t.Errorf("trace makespan %g vs result %g", tr.Makespan, res.Makespan)
	}
	last := 0.0
	for _, span := range tr.Spans {
		if span.Finish > last {
			last = span.Finish
		}
	}
	if math.Abs(last-tr.Makespan) > 1e-6 {
		t.Errorf("last span ends at %g, makespan %g", last, tr.Makespan)
	}
}

// TestOverlayAblationDirection: adding measured overheads to the analytic
// model must move simulated makespans toward the experiment.
func TestOverlayAblationDirection(t *testing.T) {
	cfg := DefaultConfig()
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := lab.Suite[0].Graph
	c := lab.Cluster()
	overlay, err := perfmodel.NewOverlay(lab.Analytic, lab.Profile, lab.Profile, "")
	if err != nil {
		t.Fatal(err)
	}

	build := func(m Model) (float64, float64) {
		s, err := sched.Build(sched.HCPA{}, g, c.Nodes, perfmodel.CostFunc(m), perfmodel.CommFunc(m, c))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := tgrid.Run(lab.Net, s, tgrid.ModelTiming{Model: m})
		if err != nil {
			t.Fatal(err)
		}
		exp, err := lab.Em.MeasureMakespan(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Makespan, exp
	}
	simA, expA := build(lab.Analytic)
	simO, expO := build(overlay)
	errA := math.Abs(expA-simA) / simA
	errO := math.Abs(expO-simO) / simO
	if errO >= errA {
		t.Errorf("overheads overlay error %g not below analytic %g", errO, errA)
	}
}
