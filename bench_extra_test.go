// Supplementary benchmarks: the ablation and scaling studies (the design
// choices DESIGN.md calls out), plus micro-benchmarks of the substrates.
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/redist"
	"repro/internal/robust"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/simgrid"
	"repro/internal/tgrid"
)

// BenchmarkAblationOverheadAttribution regenerates the §V-C error
// attribution: which of the analytic simulator's omissions (task times,
// startup overhead, redistribution overhead) causes how much error.
func BenchmarkAblationOverheadAttribution(b *testing.B) {
	l := sharedLab(b)
	rows, err := l.Ablation()
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("ablation", func() { experiments.WriteAblation(os.Stdout, rows) })
	for _, r := range rows {
		b.ReportMetric(r.MedianErrPct, "mederr%/"+r.Model)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Ablation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustnessTrials measures the Monte Carlo perturbation engine
// (internal/robust): one full winner-stability study per iteration — the
// base HCPA-vs-MCPA campaign on the n=2000 suite plus 8 perturbation
// trials at one noise level — against a shared registry, so the figure
// excludes model fitting but not the base campaign. The custom metrics
// normalise the whole study by its trial-run count: end-to-end study
// throughput in trial runs per second (a fixed base-campaign share — 2
// of 18 runs at this spec — rides along in the denominator's time) and
// heap allocations per trial run. Four variants cover the engine's
// regimes: "resched" rebuilds schedules per trial through the scratch
// path (default noise reaches task times, so replay is ineligible),
// "replay" keeps the truth-model schedules and only re-predicts
// (prediction_only), and the two "…-seq" variants add the Wilson
// sequential stop rule, whose trialruns/s figure counts the full budget
// so the saved trials show up as throughput.
func BenchmarkRobustnessTrials(b *testing.B) {
	cfg := experiments.DefaultConfig()
	reg := service.NewModelRegistry(cfg.Profile, cfg.Empirical)
	base := robust.Spec{
		Spec: campaign.Spec{
			Name:       "bench",
			Workloads:  campaign.WorkloadAxis{Sizes: []int{2000}},
			Algorithms: []string{"HCPA", "MCPA"},
			Models:     []string{"analytic"},
		},
		Robustness: robust.Axis{Trials: 8, Levels: []float64{0.1}},
	}
	variants := []struct {
		name           string
		predictionOnly bool
		sequential     bool
	}{
		{"resched", false, false},
		{"replay", true, false},
		{"resched-seq", false, true},
		{"replay-seq", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			spec := base
			spec.Robustness.PredictionOnly = v.predictionOnly
			spec.Robustness.Sequential = v.sequential
			plan, err := spec.Plan()
			if err != nil {
				b.Fatal(err)
			}
			eng := robust.Engine{Source: reg}
			if _, err := eng.Run(context.Background(), spec); err != nil {
				b.Fatal(err) // warm the registry (and the engine's runner pool)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			trialRuns := float64(plan.TrialRuns() * b.N)
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(trialRuns/secs, "trialruns/s")
			}
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/trialRuns, "allocs/trial")
		})
	}
}

// BenchmarkMetricsOverhead prices the telemetry layer against the hottest
// unit of work it instruments: one schedule replay, the robustness engine's
// per-trial cost. "bare" is the replay alone; "instrumented" adds a counter
// increment, a histogram observation and a progress update per replay — a
// deliberate upper bound, since the real engines batch their telemetry per
// (instance, level) rather than per trial. The ns/op gap between the two
// variants is the worst-case per-trial cost of metrics being enabled, and
// must stay far under 2% of the replay itself.
func BenchmarkMetricsOverhead(b *testing.B) {
	c := Bayreuth()
	model := perfmodel.NewAnalytic(c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		b.Fatal(err)
	}
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 1})
	s, err := sched.Build(sched.HCPA{}, g, c.Nodes, perfmodel.CostFunc(model), perfmodel.CommFunc(model, c))
	if err != nil {
		b.Fatal(err)
	}
	r := obs.NewRegistry()
	trials := r.Counter("bench_trials_total", "Trials replayed by the overhead benchmark.")
	spans := r.Histogram("bench_makespan_seconds", "Simulated makespans seen by the overhead benchmark.", obs.DefBuckets)
	prog := &obs.Progress{}

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model})
			if err != nil {
				b.Fatal(err)
			}
			trials.Inc()
			spans.Observe(res.Makespan)
			prog.AddTrialsUsed(1)
		}
	})
}

// BenchmarkScalingStudy regenerates the §IX platform-scaling scenario: the
// empirical simulator on hypothetical 64-node clusters.
func BenchmarkScalingStudy(b *testing.B) {
	cfg := experiments.DefaultConfig()
	rows, err := experiments.ScalingStudy(cfg, []int{32, 64})
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("scaling", func() { experiments.WriteScaling(os.Stdout, rows) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScalingStudy(cfg, []int{32, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseSensitivity regenerates the noise-sensitivity table: how
// many of the analytic simulator's wrong winners are structural versus
// caused by run-to-run measurement noise.
func BenchmarkNoiseSensitivity(b *testing.B) {
	cfg := experiments.DefaultConfig()
	sigmas := []float64{0, 0.03, 0.2}
	rows, err := experiments.NoiseSensitivity(cfg, sigmas)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("sensitivity", func() { experiments.WriteSensitivity(os.Stdout, rows) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NoiseSensitivity(cfg, sigmas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudySerialVsParallel measures the study-execution engine's
// speedup: the same suite-wide study (the Figure 1 comparison under one
// noise level) at workers=1 versus one worker per CPU. The two variants
// produce byte-identical tables; only wall-clock differs.
func BenchmarkStudySerialVsParallel(b *testing.B) {
	sigmas := []float64{0.03}
	variants := []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=all", 0}, // one per CPU (experiments.DefaultParallelism)
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := experiments.DefaultConfig()
			cfg.Parallelism = v.workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.NoiseSensitivity(cfg, sigmas); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceScheduleThroughput measures the service layer's schedule
// path under the empirical model: "cold" pays the §VII fitting campaign on
// every request (a fresh registry each iteration — the one-shot CLI
// economics), "warm" reuses the registry-cached fit (the service
// economics). The gap is the measurement cost the registry amortises.
func BenchmarkServiceScheduleThroughput(b *testing.B) {
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 1})
	req := service.ScheduleRequest{DAG: g, Algorithm: "HCPA", Model: "empirical"}
	ctx := context.Background()

	b.Run("cold-registry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc := service.New(service.DefaultOptions())
			if _, err := svc.Schedule(ctx, req); err != nil {
				b.Fatal(err)
			}
			if err := svc.Close(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		svc := service.New(service.DefaultOptions())
		defer svc.Close(ctx)
		if _, err := svc.Schedule(ctx, req); err != nil { // prime the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Schedule(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.CacheHit {
				b.Fatal("warm request missed the registry cache")
			}
		}
	})
}

// BenchmarkMaxMinSolver measures the resource-sharing solver on a contended
// scenario — 64 transfers over a 32-node star network — in steady state: one
// engine and one set of actions are built up front and replayed through the
// Reset lifecycle, so the loop exercises pure event-loop and solver work.
// With the sparse solver and hoisted scratch this runs allocation-free.
func BenchmarkMaxMinSolver(b *testing.B) {
	net, err := simgrid.NewNet(Bayreuth())
	if err != nil {
		b.Fatal(err)
	}
	actions := make([]*simgrid.Action, 0, 64)
	for f := 0; f < 64; f++ {
		src, dst := f%32, (f*7+5)%32
		if src == dst {
			dst = (dst + 1) % 32
		}
		bytes := make([][]float64, 2)
		bytes[0] = []float64{0, 1e6 * float64(f+1)}
		bytes[1] = []float64{0, 0}
		actions = append(actions, net.Ptask(fmt.Sprintf("f%d", f), []int{src, dst}, nil, bytes))
	}
	e := net.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(nil)
		for _, a := range actions {
			a.Reset()
			e.Add(a)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAGGenerate measures the random generator.
func BenchmarkDAGGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := dag.Generate(dag.GenParams{
			Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchScheduler measures one allocation+mapping pass.
func benchScheduler(b *testing.B, algo sched.Algorithm) {
	c := Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Build(algo, g, c.Nodes, cost, comm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerCPA measures the CPA two-phase scheduler.
func BenchmarkSchedulerCPA(b *testing.B) { benchScheduler(b, sched.CPA{}) }

// BenchmarkSchedulerHCPA measures the HCPA two-phase scheduler.
func BenchmarkSchedulerHCPA(b *testing.B) { benchScheduler(b, sched.HCPA{}) }

// BenchmarkSchedulerMCPA measures the MCPA two-phase scheduler.
func BenchmarkSchedulerMCPA(b *testing.B) { benchScheduler(b, sched.MCPA{}) }

// BenchmarkSchedulerMHEFT measures the one-phase M-HEFT baseline.
func BenchmarkSchedulerMHEFT(b *testing.B) {
	c := Bayreuth()
	model := perfmodel.NewAnalytic(c)
	cost := perfmodel.CostFunc(model)
	comm := perfmodel.CommFunc(model, c)
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (sched.MHEFT{}).Build(g, c.Nodes, cost, comm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVirtualReplay measures one virtual-time execution of a schedule
// (the simulator's inner loop).
func BenchmarkVirtualReplay(b *testing.B) {
	c := Bayreuth()
	model := perfmodel.NewAnalytic(c)
	net, err := simgrid.NewNet(c)
	if err != nil {
		b.Fatal(err)
	}
	g := dag.MustGenerate(dag.GenParams{Tasks: 10, InputMatrices: 8, AddRatio: 0.5, N: 2000, Seed: 1})
	s, err := sched.Build(sched.HCPA{}, g, c.Nodes, perfmodel.CostFunc(model), perfmodel.CommFunc(model, c))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tgrid.Run(net, s, tgrid.ModelTiming{Model: model}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulatorExecute measures one emulated-cluster execution (the
// "experiment" side).
func BenchmarkEmulatorExecute(b *testing.B) {
	l := sharedLab(b)
	g := l.Suite[0].Graph
	model := l.Analytic
	s, err := sched.Build(sched.HCPA{}, g, l.Cluster().Nodes,
		perfmodel.CostFunc(model), perfmodel.CommFunc(model, l.Cluster()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Em.Execute(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRedistCommMatrix measures the 1-D overlap plan computation.
func BenchmarkRedistCommMatrix(b *testing.B) {
	src, _ := redist.NewDist(3000, 17)
	dst, _ := redist.NewDist(3000, 23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redist.CommMatrix(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParMatMulReal measures the real 1-D parallel multiplication on
// four goroutine ranks (n = 192).
func BenchmarkParMatMulReal(b *testing.B) {
	const n, p = 192, 4
	a := kernels.RandomMatrix(n, 1)
	m := kernels.RandomMatrix(n, 2)
	d, _ := redist.NewDist(n, p)
	ab, bb := kernels.Scatter(a, d), kernels.Scatter(m, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([]*kernels.Matrix, p)
		mpi.Run(p, func(c *mpi.Comm) {
			out[c.Rank()] = kernels.ParMatMul(c, ab[c.Rank()], bb[c.Rank()], d)
		})
	}
}

// BenchmarkSeqMatMul is the sequential reference point for ParMatMulReal.
func BenchmarkSeqMatMul(b *testing.B) {
	const n = 192
	a := kernels.RandomMatrix(n, 1)
	m := kernels.RandomMatrix(n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.SeqMatMul(a, m)
	}
}

// BenchmarkSeqMatMulBlocked measures the cache-tiled kernel against the
// naive one — the memory-hierarchy effect behind the paper's p=8 outlier.
func BenchmarkSeqMatMulBlocked(b *testing.B) {
	const n = 192
	a := kernels.RandomMatrix(n, 1)
	m := kernels.RandomMatrix(n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.SeqMatMulBlocked(a, m, 64)
	}
}

// BenchmarkStragglerStudy regenerates the degraded-node study: the profile
// simulator collapses when one node runs slow, because per-count profiling
// cannot express host identity.
func BenchmarkStragglerStudy(b *testing.B) {
	cfg := experiments.DefaultConfig()
	rows, err := experiments.StragglerStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("straggler", func() { experiments.WriteStraggler(os.Stdout, rows) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StragglerStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeterogeneityStudy regenerates the two-speed-cluster study
// porting the case study to HCPA's original heterogeneous setting.
func BenchmarkHeterogeneityStudy(b *testing.B) {
	cfg := experiments.DefaultConfig()
	rows, err := experiments.HeterogeneityStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("hetero", func() { experiments.WriteHetero(os.Stdout, rows) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HeterogeneityStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
