package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks checks every relative link in README.md and docs/*.md:
// the referenced file or directory must exist in the repository, so the
// documentation cannot drift ahead of (or behind) the tree. External links
// and pure anchors are skipped. CI runs this as the docs job's link gate.
func TestMarkdownLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 2 {
		t.Fatalf("found only %v; the docs tree moved?", files)
	}

	linkRe := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %s, which does not exist (%v)", file, m[1], err)
			}
		}
	}
}

// TestMarkdownFileReferences spot-checks that the paths the README and docs
// name in backtick code spans still exist — the references most likely to
// rot when packages move.
func TestMarkdownFileReferences(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)

	// Backtick spans that look like in-repo paths: start with a known
	// top-level directory and contain a slash. A trailing ".Symbol" marks a
	// Go identifier qualified by its package path (`internal/service.Client`)
	// — strip it and check the package directory instead.
	refRe := regexp.MustCompile("`((?:internal|cmd|examples|docs)/[A-Za-z0-9_./-]+)`")
	symRe := regexp.MustCompile(`\.[A-Z][A-Za-z0-9_]*$`)
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range refRe.FindAllStringSubmatch(string(data), -1) {
			path := symRe.ReplaceAllString(m[1], "")
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s references `%s`, which does not exist", file, m[1])
			}
		}
	}
}
